// Storage-layer tests: dual-mode flat containers (owned vs mapped view must
// answer identically), segment blob round-trips, the paged-file layer
// (superblock, segment table, checksums), and the on-disk corruption classes
// every reader must survive with a clean Status — never a crash.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/flat.h"
#include "storage/format.h"
#include "storage/paged_file.h"
#include "storage/segment.h"

namespace flix::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// FlatVec

TEST(FlatVecTest, OwnedAndViewAnswerIdentically) {
  const std::vector<uint32_t> data = {5, 1, 4, 1, 5, 9, 2, 6};
  FlatVec<uint32_t> owned = data;
  const FlatVec<uint32_t> view =
      FlatVec<uint32_t>::FromView({data.data(), data.size()});

  EXPECT_FALSE(owned.is_view());
  EXPECT_TRUE(view.is_view());
  ASSERT_EQ(owned.size(), view.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(owned[i], data[i]);
    EXPECT_EQ(view[i], data[i]);
  }
  EXPECT_TRUE(std::equal(view.begin(), view.end(), owned.begin()));
  EXPECT_EQ(view.span().size(), data.size());
  EXPECT_EQ(view.MemoryBytes(), data.size() * sizeof(uint32_t));
}

TEST(FlatVecTest, AssignFromVectorClearsViewMode) {
  const std::vector<NodeId> backing = {1, 2, 3};
  FlatVec<NodeId> v = FlatVec<NodeId>::FromView({backing.data(), backing.size()});
  ASSERT_TRUE(v.is_view());
  v = std::vector<NodeId>{7, 8};
  EXPECT_FALSE(v.is_view());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 7u);
  v.push_back(9);
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// FlatRows

TEST(FlatRowsTest, FlattenFromViewRoundTrip) {
  FlatRows<NodeId> owned = std::vector<std::vector<NodeId>>{
      {3, 1, 4}, {}, {1, 5}, {9, 2, 6, 5}, {}};

  std::vector<uint64_t> offsets;
  std::vector<NodeId> flat;
  owned.Flatten(offsets, flat);
  ASSERT_EQ(offsets.size(), owned.size() + 1);
  ASSERT_EQ(flat.size(), owned.TotalEntries());

  auto view = FlatRows<NodeId>::FromView({offsets.data(), offsets.size()},
                                         {flat.data(), flat.size()});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->size(), owned.size());
  EXPECT_EQ(view->TotalEntries(), owned.TotalEntries());
  for (size_t i = 0; i < owned.size(); ++i) {
    const std::span<const NodeId> a = owned[i];
    const std::span<const NodeId> b = (*view)[i];
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }

  // A view flattens back to the same CSR pair (paged re-save of a mapped
  // instance relies on this).
  std::vector<uint64_t> offsets2;
  std::vector<NodeId> flat2;
  view->Flatten(offsets2, flat2);
  EXPECT_EQ(offsets2, offsets);
  EXPECT_EQ(flat2, flat);
}

TEST(FlatRowsTest, FromViewRejectsMalformedShapes) {
  const std::vector<NodeId> flat = {1, 2, 3};
  const std::vector<uint64_t> empty_offsets;
  const std::vector<uint64_t> bad_start = {1, 3};
  const std::vector<uint64_t> bad_end = {0, 2};
  const std::vector<uint64_t> non_monotonic = {0, 2, 1, 3};
  EXPECT_FALSE(FlatRows<NodeId>::FromView(
                   {empty_offsets.data(), empty_offsets.size()},
                   {flat.data(), flat.size()})
                   .ok());
  EXPECT_FALSE(FlatRows<NodeId>::FromView({bad_start.data(), bad_start.size()},
                                          {flat.data(), flat.size()})
                   .ok());
  EXPECT_FALSE(FlatRows<NodeId>::FromView({bad_end.data(), bad_end.size()},
                                          {flat.data(), flat.size()})
                   .ok());
  EXPECT_FALSE(FlatRows<NodeId>::FromView(
                   {non_monotonic.data(), non_monotonic.size()},
                   {flat.data(), flat.size()})
                   .ok());
}

// ---------------------------------------------------------------------------
// FlatMultiMap

TEST(FlatMultiMapTest, OwnedAndViewAnswerIdentically) {
  FlatMultiMap owned;
  owned.Add(17, 100);
  owned.Add(3, 7);
  owned.Add(17, 101);
  owned.Add(42, 1);
  ASSERT_EQ(owned.NumKeys(), 3u);
  ASSERT_EQ(owned.TotalValues(), 4u);
  EXPECT_TRUE(owned.Contains(3));
  EXPECT_FALSE(owned.Contains(4));
  EXPECT_TRUE(owned.At(99).empty());

  std::vector<NodeId> keys;
  std::vector<uint64_t> offsets;
  std::vector<NodeId> flat;
  owned.Flatten(keys, offsets, flat);
  ASSERT_EQ(keys, (std::vector<NodeId>{3, 17, 42}));  // ascending

  auto view = FlatMultiMap::FromView({keys.data(), keys.size()},
                                     {offsets.data(), offsets.size()},
                                     {flat.data(), flat.size()});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->is_view());
  EXPECT_EQ(view->NumKeys(), owned.NumKeys());
  EXPECT_EQ(view->TotalValues(), owned.TotalValues());
  for (const NodeId key : keys) {
    const std::span<const NodeId> a = owned.At(key);
    const std::span<const NodeId> b = view->At(key);
    ASSERT_EQ(a.size(), b.size()) << "key " << key;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  EXPECT_TRUE(view->At(99).empty());
  EXPECT_FALSE(view->Contains(99));

  // View-mode ForEach visits keys in ascending order.
  std::vector<NodeId> visited;
  view->ForEach([&](NodeId key, std::span<const NodeId> values) {
    visited.push_back(key);
    EXPECT_FALSE(values.empty());
  });
  EXPECT_EQ(visited, keys);
}

TEST(FlatMultiMapTest, FromViewRejectsMalformedShapes) {
  const std::vector<NodeId> unsorted = {5, 2};
  const std::vector<NodeId> dup = {2, 2};
  const std::vector<uint64_t> offsets = {0, 1, 2};
  const std::vector<NodeId> flat = {10, 11};
  EXPECT_FALSE(FlatMultiMap::FromView({unsorted.data(), unsorted.size()},
                                      {offsets.data(), offsets.size()},
                                      {flat.data(), flat.size()})
                   .ok());
  EXPECT_FALSE(FlatMultiMap::FromView({dup.data(), dup.size()},
                                      {offsets.data(), offsets.size()},
                                      {flat.data(), flat.size()})
                   .ok());
  const std::vector<NodeId> keys = {2, 5};
  const std::vector<uint64_t> short_offsets = {0, 2};
  EXPECT_FALSE(FlatMultiMap::FromView({keys.data(), keys.size()},
                                      {short_offsets.data(), short_offsets.size()},
                                      {flat.data(), flat.size()})
                   .ok());
}

// ---------------------------------------------------------------------------
// SegmentWriter / SegmentView

TEST(SegmentTest, TypedArrayRoundTrip) {
  const std::vector<uint32_t> small = {1, 2, 3};
  const std::vector<uint64_t> wide = {1ull << 40, 7};
  const std::vector<int32_t> negatives = {-5, 0, 5};
  const std::vector<uint32_t> empty;

  SegmentWriter writer;
  writer.Add<uint32_t>(1, small);
  writer.Add<uint64_t>(2, wide);
  writer.Add<int32_t>(7, negatives);
  writer.Add<uint32_t>(9, empty);
  const std::vector<std::byte> blob = writer.Finish();

  auto view = SegmentView::Parse({blob.data(), blob.size()});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->array_count(), 4u);
  EXPECT_TRUE(view->HasArray(2));
  EXPECT_FALSE(view->HasArray(3));

  const auto got_small = view->GetArray<uint32_t>(1);
  ASSERT_TRUE(got_small.ok());
  EXPECT_TRUE(std::equal(got_small->begin(), got_small->end(), small.begin(),
                         small.end()));
  const auto got_wide = view->GetArray<uint64_t>(2);
  ASSERT_TRUE(got_wide.ok());
  EXPECT_EQ((*got_wide)[0], 1ull << 40);
  const auto got_empty = view->GetArray<uint32_t>(9);
  ASSERT_TRUE(got_empty.ok());
  EXPECT_TRUE(got_empty->empty());

  // Arrays are cache-line aligned *within* the blob (segments themselves
  // start page-aligned in a file, so mapped spans end up 64-byte aligned).
  const auto* base = reinterpret_cast<const std::byte*>(blob.data());
  EXPECT_EQ((reinterpret_cast<const std::byte*>(got_small->data()) - base) %
                kArrayAlign,
            0);
  EXPECT_EQ((reinterpret_cast<const std::byte*>(got_wide->data()) - base) %
                kArrayAlign,
            0);

  // Typed access is checked against the on-disk element size.
  EXPECT_FALSE(view->GetArray<uint64_t>(1).ok());
  // Absent ids are an error, not a crash.
  EXPECT_FALSE(view->GetArray<uint32_t>(3).ok());
}

TEST(SegmentTest, ParseRejectsGarbageAndTruncation) {
  EXPECT_FALSE(SegmentView::Parse({}).ok());

  std::vector<std::byte> garbage(64, std::byte{0xAB});
  EXPECT_FALSE(SegmentView::Parse({garbage.data(), garbage.size()}).ok());

  SegmentWriter writer;
  const std::vector<uint32_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  writer.Add<uint32_t>(1, data);
  const std::vector<std::byte> blob = writer.Finish();
  // Every truncation point must fail cleanly: either the header, the
  // directory, or an array escaping the shortened payload.
  for (const size_t keep : {size_t{1}, size_t{7}, blob.size() / 2,
                            blob.size() - 1}) {
    EXPECT_FALSE(SegmentView::Parse({blob.data(), keep}).ok())
        << "kept " << keep << " of " << blob.size();
  }
}

// ---------------------------------------------------------------------------
// PagedFileWriter / PagedFileReader

// Writes a small two-segment paged file and returns its path.
std::string WriteSampleFile(const std::string& name) {
  const std::string path = TempPath(name);
  Superblock sb;
  sb.num_elements = 1234;
  sb.num_partitions = 1;
  sb.config = 3;
  sb.partition_bound = 250;
  auto writer = PagedFileWriter::Create(path, sb);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();

  SegmentWriter framework;
  const std::vector<uint32_t> meta_of_node = {0, 0, 1, 1};
  framework.Add<uint32_t>(1, meta_of_node);
  const std::vector<std::byte> fw = framework.Finish();
  EXPECT_TRUE(writer->AddSegment(SegmentKind::kFramework, 0, 0,
                                 {fw.data(), fw.size()})
                  .ok());

  SegmentWriter partition;
  const std::vector<NodeId> nodes = {10, 11, 12};
  partition.Add<NodeId>(1, nodes);
  const std::vector<std::byte> part = partition.Finish();
  EXPECT_TRUE(writer->AddSegment(SegmentKind::kPartition, 0, 0,
                                 {part.data(), part.size()})
                  .ok());
  EXPECT_TRUE(writer->Finish().ok());
  return path;
}

TEST(PagedFileTest, WriteOpenRoundTrip) {
  const std::string path = WriteSampleFile("paged_roundtrip.flix");
  EXPECT_TRUE(PagedFileReader::SniffPagedFile(path));

  auto reader = PagedFileReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const Superblock& sb = reader->superblock();
  EXPECT_EQ(sb.magic, kPagedMagic);
  EXPECT_EQ(sb.version, kPagedVersion);
  EXPECT_EQ(sb.num_elements, 1234u);
  EXPECT_EQ(sb.config, 3u);
  EXPECT_EQ(sb.partition_bound, 250u);
  EXPECT_EQ(sb.file_bytes, std::filesystem::file_size(path));
  ASSERT_EQ(reader->segments().size(), 2u);

  const SegmentEntry* fw = reader->Find(SegmentKind::kFramework, 0);
  ASSERT_NE(fw, nullptr);
  EXPECT_EQ(fw->offset % kPageBytes, 0u);
  EXPECT_TRUE(reader->VerifySegment(*fw).ok());
  auto view = reader->View(*fw);
  ASSERT_TRUE(view.ok());
  const auto arr = view->GetArray<uint32_t>(1);
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)[2], 1u);

  EXPECT_NE(reader->Find(SegmentKind::kPartition, 0), nullptr);
  EXPECT_EQ(reader->Find(SegmentKind::kIndex, 0), nullptr);
  EXPECT_EQ(reader->Find(SegmentKind::kPartition, 5), nullptr);
}

TEST(PagedFileTest, SniffRejectsOtherFiles) {
  EXPECT_FALSE(PagedFileReader::SniffPagedFile(TempPath("missing.flix")));
  const std::string path = TempPath("not_paged.flix");
  WriteAll(path, {'F', 'L', 'I', 'X', '0', '1'});  // stream-format magic
  EXPECT_FALSE(PagedFileReader::SniffPagedFile(path));
}

// Each corruption class must produce a clean non-ok Status from Open — no
// crash, no partially constructed reader.
TEST(PagedFileTest, OpenRejectsEmptyFile) {
  const std::string path = TempPath("empty.flix");
  WriteAll(path, {});
  EXPECT_FALSE(PagedFileReader::Open(path).ok());
}

TEST(PagedFileTest, OpenRejectsMissingFile) {
  EXPECT_FALSE(PagedFileReader::Open(TempPath("does_not_exist.flix")).ok());
}

TEST(PagedFileTest, OpenRejectsTruncatedFile) {
  const std::string path = WriteSampleFile("truncated.flix");
  std::vector<char> bytes = ReadAll(path);
  // Truncate at several depths: inside the superblock, after it, and inside
  // the segment table.
  for (const size_t keep :
       {size_t{16}, size_t{kPageBytes / 2}, bytes.size() - 40,
        bytes.size() - 1}) {
    std::vector<char> shortened(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(keep));
    WriteAll(path, shortened);
    EXPECT_FALSE(PagedFileReader::Open(path).ok()) << "kept " << keep;
  }
}

TEST(PagedFileTest, OpenRejectsFlippedMagic) {
  const std::string path = WriteSampleFile("bad_magic.flix");
  std::vector<char> bytes = ReadAll(path);
  bytes[0] ^= 0x01;
  WriteAll(path, bytes);
  EXPECT_FALSE(PagedFileReader::SniffPagedFile(path));
  EXPECT_FALSE(PagedFileReader::Open(path).ok());
}

TEST(PagedFileTest, OpenRejectsCorruptSuperblock) {
  const std::string path = WriteSampleFile("bad_superblock.flix");
  std::vector<char> bytes = ReadAll(path);
  bytes[offsetof(Superblock, num_elements)] ^= 0x40;  // checksum now stale
  WriteAll(path, bytes);
  EXPECT_FALSE(PagedFileReader::Open(path).ok());
}

TEST(PagedFileTest, OpenRejectsCorruptSegmentTable) {
  const std::string path = WriteSampleFile("bad_table.flix");
  auto reader = PagedFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const uint64_t table_offset = reader->superblock().segment_table_offset;
  reader = PagedFileReader::Open("");  // drop the mapping before rewriting

  std::vector<char> bytes = ReadAll(path);
  bytes[table_offset + offsetof(SegmentEntry, length)] ^= 0x04;
  WriteAll(path, bytes);
  EXPECT_FALSE(PagedFileReader::Open(path).ok());
}

TEST(PagedFileTest, PayloadBitFlipCaughtByChecksumPolicy) {
  const std::string path = WriteSampleFile("bad_payload.flix");
  std::vector<char> bytes = ReadAll(path);
  // Flip one bit inside the first segment's payload (page 1).
  bytes[kPageBytes + sizeof(SegmentHeader) + sizeof(ArrayEntry)] ^= 0x10;
  WriteAll(path, bytes);

  // The safe default verifies all payloads up front and refuses the file.
  EXPECT_FALSE(PagedFileReader::Open(path, /*verify_checksums=*/true).ok());

  // The deferred mode opens (superblock and table are intact) and surfaces
  // the corruption via the per-segment check instead.
  auto reader = PagedFileReader::Open(path, /*verify_checksums=*/false);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SegmentEntry* fw = reader->Find(SegmentKind::kFramework, 0);
  ASSERT_NE(fw, nullptr);
  EXPECT_FALSE(reader->VerifySegment(*fw).ok());
}

}  // namespace
}  // namespace flix::storage
