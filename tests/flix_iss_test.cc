#include "flix/iss.h"

#include <gtest/gtest.h>

#include "flix/config.h"
#include "graph/digraph.h"

namespace flix::core {
namespace {

graph::Digraph Forest() {
  graph::Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  return g;
}

graph::Digraph Cyclic() {
  graph::Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  return g;
}

TEST(IssTest, AutoPicksPpoForForests) {
  FlixOptions options;
  options.iss_policy = IssPolicy::kAuto;
  options.config = MdbConfig::kNaive;
  EXPECT_EQ(SelectStrategy(Forest(), options), index::StrategyKind::kPpo);
}

TEST(IssTest, AutoPicksHopiForLinkedGraphs) {
  FlixOptions options;
  options.iss_policy = IssPolicy::kAuto;
  options.config = MdbConfig::kNaive;
  EXPECT_EQ(SelectStrategy(Cyclic(), options), index::StrategyKind::kHopi);
}

TEST(IssTest, AutoFallsBackToApexAboveHopiBudget) {
  FlixOptions options;
  options.iss_policy = IssPolicy::kAuto;
  options.config = MdbConfig::kNaive;
  options.hopi_max_nodes = 2;
  EXPECT_EQ(SelectStrategy(Cyclic(), options), index::StrategyKind::kApex);
}

TEST(IssTest, UnconnectedHopiConfigForcesHopi) {
  FlixOptions options;
  options.iss_policy = IssPolicy::kAuto;
  options.config = MdbConfig::kUnconnectedHopi;
  // Even forests get HOPI under the Unconnected HOPI configuration, which
  // is defined by its per-partition HOPI indexes.
  EXPECT_EQ(SelectStrategy(Forest(), options), index::StrategyKind::kHopi);
}

TEST(IssTest, ForcePoliciesWin) {
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  options.iss_policy = IssPolicy::kForceHopi;
  EXPECT_EQ(SelectStrategy(Forest(), options), index::StrategyKind::kHopi);
  options.iss_policy = IssPolicy::kForceApex;
  EXPECT_EQ(SelectStrategy(Cyclic(), options), index::StrategyKind::kApex);
}

TEST(IssTest, ConfigNamesStable) {
  EXPECT_EQ(MdbConfigName(MdbConfig::kNaive), "Naive");
  EXPECT_EQ(MdbConfigName(MdbConfig::kMaximalPpo), "MaximalPPO");
  EXPECT_EQ(MdbConfigName(MdbConfig::kUnconnectedHopi), "UnconnectedHOPI");
  EXPECT_EQ(MdbConfigName(MdbConfig::kHybrid), "Hybrid");
}

}  // namespace
}  // namespace flix::core
