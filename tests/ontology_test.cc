#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include "flix/flix.h"
#include "ontology/relaxation.h"
#include "xml/collection.h"

namespace flix::ontology {
namespace {

TEST(OntologyTest, IdenticalTermsFullySimilar) {
  Ontology o;
  EXPECT_EQ(o.Similarity("a", "a"), 1.0);
}

TEST(OntologyTest, UnknownTermsUnrelated) {
  Ontology o;
  EXPECT_EQ(o.Similarity("a", "b"), 0.0);
}

TEST(OntologyTest, DirectSimilaritySymmetric) {
  Ontology o;
  o.AddSimilarity("movie", "film", 0.9);
  EXPECT_DOUBLE_EQ(o.Similarity("movie", "film"), 0.9);
  EXPECT_DOUBLE_EQ(o.Similarity("film", "movie"), 0.9);
}

TEST(OntologyTest, TransitiveSimilarityIsProduct) {
  Ontology o;
  o.AddSimilarity("a", "b", 0.9);
  o.AddSimilarity("b", "c", 0.8);
  EXPECT_NEAR(o.Similarity("a", "c"), 0.72, 1e-9);
}

TEST(OntologyTest, BestPathWins) {
  Ontology o;
  o.AddSimilarity("a", "b", 0.5);
  o.AddSimilarity("a", "x", 0.9);
  o.AddSimilarity("x", "b", 0.9);
  EXPECT_NEAR(o.Similarity("a", "b"), 0.81, 1e-9);
}

TEST(OntologyTest, FloorCutsWeakChains) {
  Ontology o;
  o.AddSimilarity("a", "b", 0.4);
  o.AddSimilarity("b", "c", 0.4);
  EXPECT_EQ(o.Similarity("a", "c", /*floor=*/0.2), 0.0);
}

TEST(OntologyTest, RepeatedAddKeepsMaximum) {
  Ontology o;
  o.AddSimilarity("a", "b", 0.5);
  o.AddSimilarity("a", "b", 0.8);
  o.AddSimilarity("b", "a", 0.3);
  EXPECT_DOUBLE_EQ(o.Similarity("a", "b"), 0.8);
}

TEST(OntologyTest, SimilarTermsSorted) {
  const Ontology o = Ontology::MovieOntology();
  const auto terms = o.SimilarTerms("movie", 0.5);
  ASSERT_GE(terms.size(), 3u);
  EXPECT_EQ(terms[0].first, "movie");
  EXPECT_EQ(terms[0].second, 1.0);
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LE(terms[i].second, terms[i - 1].second);
  }
}

TEST(OntologyTest, MovieOntologyCoversPaperExample) {
  const Ontology o = Ontology::MovieOntology();
  EXPECT_GT(o.Similarity("movie", "science-fiction"), 0.8);
  EXPECT_GT(o.Similarity("actor", "cast-member"), 0.8);
}

TEST(RelaxationTest, ParseSimplePath) {
  const auto q = ParsePathQuery("movie/actor");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps.size(), 2u);
  EXPECT_EQ(q->steps[0].tag, "movie");
  EXPECT_FALSE(q->steps[0].descendant_axis);
  EXPECT_EQ(q->steps[1].tag, "actor");
  EXPECT_FALSE(q->steps[1].similar);
}

TEST(RelaxationTest, ParseDescendantAndSimilar) {
  const auto q = ParsePathQuery("//~movie//actor/~title");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps.size(), 3u);
  EXPECT_TRUE(q->steps[0].descendant_axis);
  EXPECT_TRUE(q->steps[0].similar);
  EXPECT_TRUE(q->steps[1].descendant_axis);
  EXPECT_FALSE(q->steps[1].similar);
  EXPECT_FALSE(q->steps[2].descendant_axis);
  EXPECT_TRUE(q->steps[2].similar);
}

TEST(RelaxationTest, ParseErrors) {
  EXPECT_FALSE(ParsePathQuery("").ok());
  EXPECT_FALSE(ParsePathQuery("//").ok());
  EXPECT_FALSE(ParsePathQuery("a//").ok());
}

TEST(RelaxationTest, RelaxTurnsChildIntoDescendant) {
  const auto q = ParsePathQuery("a/b/c");
  ASSERT_TRUE(q.ok());
  const PathQuery relaxed = Relax(*q);
  for (const QueryStep& step : relaxed.steps) {
    EXPECT_TRUE(step.descendant_axis);
  }
}

// The paper's motivating scenario: a heterogeneous movie collection where
// one source uses <science-fiction> instead of <movie> and nests actors
// under a cast element.
xml::Collection MovieCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml(
      R"(<movie><title>Matrix</title><actor>Reeves</actor></movie>)",
      "m1").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<science-fiction><title>Matrix 3</title>)"
      R"(<cast><actor>Moss</actor></cast></science-fiction>)",
      "m2").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<book><title>Neuromancer</title><author>Gibson</author></book>)",
      "b1").ok());
  c.ResolveAllLinks();
  return c;
}

TEST(RelaxationTest, ExactQueryMissesHeterogeneousData) {
  const xml::Collection c = MovieCollection();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();

  // movie/actor as written: only the homogeneous document matches.
  const auto exact = ParsePathQuery("movie/actor");
  ASSERT_TRUE(exact.ok());
  const auto matches = EvaluatePathQuery(**flix, o, *exact);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].node, c.GlobalId(0, 2));
  EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
}

TEST(RelaxationTest, RelaxedQueryFindsAllSourcesRanked) {
  const xml::Collection c = MovieCollection();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();

  const auto q = ParsePathQuery("//~movie//actor");
  ASSERT_TRUE(q.ok());
  const auto matches = EvaluatePathQuery(**flix, o, *q);
  ASSERT_EQ(matches.size(), 2u);
  // Exact tag + direct child outranks similar tag + longer path.
  EXPECT_EQ(matches[0].node, c.GlobalId(0, 2));
  EXPECT_EQ(matches[1].node, c.GlobalId(1, 3));
  EXPECT_GT(matches[0].score, matches[1].score);
  EXPECT_GT(matches[1].score, 0.0);
  // science-fiction (0.9) * one extra hop through cast (alpha 0.8).
  EXPECT_NEAR(matches[1].score, 0.9 * 0.8, 1e-9);
}

TEST(RelaxationTest, BookNeverMatchesMovieQuery) {
  const xml::Collection c = MovieCollection();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();
  const auto q = ParsePathQuery("//~movie//~title");
  ASSERT_TRUE(q.ok());
  const auto matches = EvaluatePathQuery(**flix, o, *q);
  for (const ScoredMatch& m : matches) {
    EXPECT_NE(m.node, c.GlobalId(2, 1)) << "book title must not match";
  }
  EXPECT_EQ(matches.size(), 2u);
}

TEST(TextSimilarityTest, Basics) {
  EXPECT_DOUBLE_EQ(TextSimilarity("Matrix", "Matrix"), 1.0);
  EXPECT_DOUBLE_EQ(TextSimilarity("Matrix", "matrix"), 1.0);  // case-folded
  EXPECT_EQ(TextSimilarity("Matrix", "Inception"), 0.0);
  EXPECT_DOUBLE_EQ(TextSimilarity("", ""), 1.0);
  EXPECT_EQ(TextSimilarity("a", ""), 0.0);
}

TEST(TextSimilarityTest, ContainmentScoresHigh) {
  // All query tokens present -> at least 0.8 even with extra tokens.
  EXPECT_GE(TextSimilarity("Matrix Revolutions", "Matrix: Revolutions"), 0.8);
  EXPECT_GE(TextSimilarity("Matrix", "Matrix: Revolutions"), 0.8);
  // Partial overlap scores by Jaccard.
  const double partial = TextSimilarity("Matrix 3", "Matrix: Revolutions");
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 0.8);
}

TEST(RelaxationTest, ParsePredicates) {
  const auto q = ParsePathQuery(R"(movie[title~"Matrix"]/actor[name="Reeves"])");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->steps.size(), 2u);
  ASSERT_EQ(q->steps[0].predicates.size(), 1u);
  EXPECT_EQ(q->steps[0].predicates[0],
            (ContentPredicate{"title", "Matrix", true}));
  ASSERT_EQ(q->steps[1].predicates.size(), 1u);
  EXPECT_EQ(q->steps[1].predicates[0],
            (ContentPredicate{"name", "Reeves", false}));
}

TEST(RelaxationTest, ParsePredicateErrors) {
  EXPECT_FALSE(ParsePathQuery("a[").ok());
  EXPECT_FALSE(ParsePathQuery("a[b]").ok());
  EXPECT_FALSE(ParsePathQuery("a[b=unquoted]").ok());
  EXPECT_FALSE(ParsePathQuery("a[b=\"open]").ok());
  EXPECT_FALSE(ParsePathQuery("a[=\"x\"]").ok());
}

TEST(RelaxationTest, ContentPredicateFiltersAndScores) {
  // The paper's example: //~movie[title~"Matrix: Revolutions"]//~actor.
  const xml::Collection c = MovieCollection();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();

  const auto q =
      ParsePathQuery(R"(//~movie[title~"Matrix"]//actor)");
  ASSERT_TRUE(q.ok());
  const auto matches = EvaluatePathQuery(**flix, o, *q);
  // Both Matrix sources match ("Matrix" and "Matrix 3" titles); order by
  // score: exact movie tag first.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].node, c.GlobalId(0, 2));
  EXPECT_EQ(matches[1].node, c.GlobalId(1, 3));

  // An exact predicate only matches the literal title.
  const auto exact = ParsePathQuery(R"(//~movie[title="Matrix"]//actor)");
  ASSERT_TRUE(exact.ok());
  const auto exact_matches = EvaluatePathQuery(**flix, o, *exact);
  ASSERT_EQ(exact_matches.size(), 1u);
  EXPECT_EQ(exact_matches[0].node, c.GlobalId(0, 2));

  // A predicate that matches nothing yields no results.
  const auto none = ParsePathQuery(R"(//~movie[title="Totoro"]//actor)");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(EvaluatePathQuery(**flix, o, *none).empty());
}

TEST(RelaxationTest, PredicateOnLaterStep) {
  // Nested filmography: the predicate applies to the final step's element.
  xml::Collection c;
  ASSERT_TRUE(c.AddXml(
      R"(<movie><title>Matrix</title><actor>Reeves)"
      R"(<movie><title>John Wick</title></movie>)"
      R"(<movie><title>Speed</title></movie>)"
      R"(</actor></movie>)",
      "m1").ok());
  c.ResolveAllLinks();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();

  const auto q = ParsePathQuery(R"(//movie//actor//movie[title="John Wick"])");
  ASSERT_TRUE(q.ok());
  const auto matches = EvaluatePathQuery(**flix, o, *q);
  // Only the John Wick movie (element 3) survives the predicate; Speed
  // (element 5) is filtered.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].node, c.GlobalId(0, 3));
}

TEST(RelaxationTest, MinScoreFiltersWeakMatches) {
  const xml::Collection c = MovieCollection();
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const Ontology o = Ontology::MovieOntology();
  const auto q = ParsePathQuery("//~movie//actor");
  ASSERT_TRUE(q.ok());
  RelaxedQueryOptions options;
  options.min_score = 0.95;
  const auto matches = EvaluatePathQuery(**flix, o, *q, options);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
}

}  // namespace
}  // namespace flix::ontology
