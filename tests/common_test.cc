#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace flix {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool low = false;
  bool high = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    low |= v == -3;
    high |= v == 3;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(ZipfSamplerTest, FirstItemMostPopular) {
  Rng rng(10);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Harmonic ratio: item 0 about twice as popular as item 1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.5);
}

TEST(ZipfSamplerTest, GrowExtendsDomain) {
  Rng rng(11);
  ZipfSampler zipf(1, 0.9);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  zipf.Grow(50);
  EXPECT_EQ(zipf.size(), 50u);
  bool beyond_first = false;
  for (int i = 0; i < 500; ++i) {
    const size_t s = zipf.Sample(rng);
    EXPECT_LT(s, 50u);
    beyond_first |= s > 0;
  }
  EXPECT_TRUE(beyond_first);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(watch.ElapsedSeconds() * 1000, watch.ElapsedMillis(), 50.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

TEST(BytesTest, FormatBytesPicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00 MB");
}

TEST(BytesTest, VectorBytesTracksCapacity) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));
}

}  // namespace
}  // namespace flix
