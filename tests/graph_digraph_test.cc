#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace flix::graph {
namespace {

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g;
  const NodeId a = g.AddNode(1);
  const NodeId b = g.AddNode(2);
  const NodeId c = g.AddNode(1);
  g.AddEdge(a, b);
  g.AddEdge(a, c, EdgeKind::kLink);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.NumLinkEdges(), 1u);
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(b), 1u);
  EXPECT_EQ(g.InDegree(a), 0u);
  EXPECT_EQ(g.Tag(a), 1u);
  EXPECT_EQ(g.Tag(b), 2u);
}

TEST(DigraphTest, ResizePreservesAndExtends) {
  Digraph g(2);
  g.SetTag(0, 5);
  g.Resize(4);
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.Tag(0), 5u);
  EXPECT_EQ(g.Tag(3), kInvalidTag);
}

TEST(DigraphTest, InArcsMirrorOutArcs) {
  Digraph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  ASSERT_EQ(g.InArcs(2).size(), 2u);
  EXPECT_EQ(g.InArcs(2)[0].target, 0u);
  EXPECT_EQ(g.InArcs(2)[1].target, 1u);
}

TEST(DigraphTest, EdgesListsAll) {
  Digraph g(3);
  g.AddEdge(0, 1, EdgeKind::kTree);
  g.AddEdge(1, 2, EdgeKind::kLink);
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1, EdgeKind::kTree}));
  EXPECT_EQ(edges[1], (Edge{1, 2, EdgeKind::kLink}));
}

TEST(DigraphTest, NodesWithTag) {
  Digraph g;
  g.AddNode(7);
  g.AddNode(8);
  g.AddNode(7);
  EXPECT_EQ(g.NodesWithTag(7), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(g.NodesWithTag(9), std::vector<NodeId>{});
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g(5);
  for (NodeId i = 0; i < 5; ++i) g.SetTag(i, i * 10);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2, EdgeKind::kLink);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  std::vector<NodeId> local;
  const Digraph sub = g.InducedSubgraph({1, 2, 4}, &local);
  EXPECT_EQ(sub.NumNodes(), 3u);
  EXPECT_EQ(sub.Tag(0), 10u);
  EXPECT_EQ(sub.Tag(1), 20u);
  EXPECT_EQ(sub.Tag(2), 40u);
  // Only edge 1->2 survives (0->1 and 2->3, 3->4 cross the boundary).
  EXPECT_EQ(sub.NumEdges(), 1u);
  ASSERT_EQ(sub.OutArcs(0).size(), 1u);
  EXPECT_EQ(sub.OutArcs(0)[0].target, 1u);
  EXPECT_EQ(sub.OutArcs(0)[0].kind, EdgeKind::kLink);
  // Mapping.
  EXPECT_EQ(local[1], 0u);
  EXPECT_EQ(local[2], 1u);
  EXPECT_EQ(local[4], 2u);
  EXPECT_EQ(local[0], kInvalidNode);
  EXPECT_EQ(local[3], kInvalidNode);
}

TEST(DigraphTest, MemoryBytesGrows) {
  Digraph small(1);
  Digraph large(1000);
  for (NodeId i = 0; i + 1 < 1000; ++i) large.AddEdge(i, i + 1);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace flix::graph
