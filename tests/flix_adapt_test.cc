// Workload-adaptive ISS tests (flix/adapt.h): the cost model turns a skewed
// workload profile into migration recommendations, StrategyMigrator swaps a
// partition's strategy atomically with zero result diffs, hysteresis keeps
// the system from flapping, a corrupted replacement is rejected with the old
// index staying live, and queries race migrations safely (the `adapt` ctest
// label is part of the TSan CI matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "check/corruption.h"
#include "flix/adapt.h"
#include "flix/flix.h"
#include "graph/traversal.h"
#include "index/hopi.h"
#include "obs/metrics.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

namespace flix::core {
namespace {

using index::StrategyKind;

// Deliberately synthetic constants (NOT CostModel::Measured()): APEX probes
// and pulls are 100x HOPI's and a HOPI rebuild is cheap, so a partition that
// serves any real traffic under APEX always projects a decisive HOPI win —
// the deterministic APEX -> HOPI direction every test below relies on. PPO
// is priced out so forest-shaped partitions don't steal the recommendation.
CostModel TestModel() {
  CostModel model;
  model.ppo = {/*probe_ns=*/500, /*pull_ns=*/500, /*bytes_per_node=*/30,
               /*build_ns_per_node=*/100};
  model.hopi = {/*probe_ns=*/10, /*pull_ns=*/10, /*bytes_per_node=*/200,
                /*build_ns_per_node=*/10};
  model.apex = {/*probe_ns=*/1000, /*pull_ns=*/1000, /*bytes_per_node=*/90,
                /*build_ns_per_node=*/50};
  return model;
}

// Several linked-document groups plus isolated documents: enough meta
// documents that the skew between a hot and a cold partition is visible.
StatusOr<xml::Collection> MakeCollection(uint64_t seed) {
  return workload::GenerateSynthetic(
      {.seed = seed, .tree_docs = 6, .dense_docs = 6, .isolated_docs = 4});
}

// A collection whose index starts out all-APEX: the static ISS was forced to
// the wrong strategy, which is exactly the situation `flixctl adapt` exists
// to repair.
StatusOr<std::unique_ptr<Flix>> BuildForcedApex(
    const xml::Collection& collection) {
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.iss_policy = IssPolicy::kForceApex;
  options.partition_bound = 120;
  auto flix = Flix::Build(collection, options);
  if (flix.ok()) (*flix)->SetAdaptiveIss(true);
  return flix;
}

// Runs every query `repeat` times whose start node lives in `partition`
// (pass any large id to run the whole workload) and returns those queries.
std::vector<workload::DescendantQuery> RunSkewedWorkload(
    Flix& flix, const xml::Collection& collection, const graph::Digraph& g,
    uint32_t partition, size_t repeat) {
  workload::QuerySamplerOptions sampler;
  sampler.seed = 31;
  sampler.count = 40;
  std::vector<workload::DescendantQuery> queries =
      workload::SampleDescendantQueries(collection, g, sampler);
  const MetaDocumentSet& set = flix.meta_documents();
  std::erase_if(queries, [&](const workload::DescendantQuery& q) {
    return partition < set.docs.size() &&
           set.meta_of_node[q.start] != partition;
  });
  for (size_t r = 0; r < repeat; ++r) {
    for (const workload::DescendantQuery& q : queries) {
      flix.FindDescendantsByName(q.start, q.tag_name);
    }
  }
  return queries;
}

// Result-set equality as sorted (node, distance) multisets: result order may
// legitimately differ across strategies, the contents must not.
bool SameResults(std::vector<Result> a, std::vector<Result> b) {
  const auto by_node = [](const Result& x, const Result& y) {
    return x.node != y.node ? x.node < y.node : x.distance < y.distance;
  };
  std::sort(a.begin(), a.end(), by_node);
  std::sort(b.begin(), b.end(), by_node);
  return a == b;
}

StrategyKind LiveKind(const Flix& flix, uint32_t partition) {
  return flix.meta_documents().docs[partition].index.Acquire()->kind();
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

TEST(AdaptTest, SkewedWorkloadDrivesRecommendation) {
  const auto collection = MakeCollection(41);
  ASSERT_TRUE(collection.ok());
  auto flix = BuildForcedApex(*collection);
  ASSERT_TRUE(flix.ok()) << flix.status().ToString();
  const graph::Digraph g = collection->BuildGraph();
  ASSERT_GT((*flix)->meta_documents().docs.size(), 1u);

  // Hammer partition 0 only; everything else stays cold.
  const uint32_t hot = 0;
  ASSERT_FALSE(RunSkewedWorkload(**flix, *collection, g, hot, 5).empty());

  const uint64_t recommended_before = CounterValue("flix.adapt.recommended");
  AdaptOptions options;
  options.hysteresis = 0;
  options.min_queries = 4;
  const std::vector<Recommendation> recs =
      RecommendStrategies(**flix, (*flix)->Profile(), TestModel(), options);
  EXPECT_GT(CounterValue("flix.adapt.recommended"), recommended_before);

  bool hot_migrates = false;
  for (const Recommendation& rec : recs) {
    if (rec.partition == hot) {
      hot_migrates = rec.migrate;
      EXPECT_EQ(rec.current, StrategyKind::kApex);
      EXPECT_EQ(rec.best, StrategyKind::kHopi);
      EXPECT_LT(rec.best_cost_ns, rec.current_cost_ns);
      EXPECT_GE(rec.queries, options.min_queries);
    }
    // Evidence gating: a partition the skewed workload never touched (its
    // queries stay under min_queries) is never migrated. Partitions the hot
    // queries reach across links may legitimately be warm.
    if (rec.queries < options.min_queries) {
      EXPECT_FALSE(rec.migrate) << "partition " << rec.partition;
    }
  }
  EXPECT_TRUE(hot_migrates);
  const auto untouched = std::count_if(
      recs.begin(), recs.end(), [&](const Recommendation& rec) {
        return rec.queries < options.min_queries;
      });
  EXPECT_GT(untouched, 0) << "workload was not actually skewed";

  // The rendered table carries the verdict the operator acts on.
  const std::string table = RecommendationsToText(recs);
  EXPECT_NE(table.find("migrate"), std::string::npos);
  EXPECT_NE(table.find("partition"), std::string::npos);
}

TEST(AdaptTest, MigrationSwapsStrategyWithIdenticalResults) {
  const auto collection = MakeCollection(43);
  ASSERT_TRUE(collection.ok());
  auto flix = BuildForcedApex(*collection);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = collection->BuildGraph();

  const uint32_t hot = 0;
  const std::vector<workload::DescendantQuery> queries =
      RunSkewedWorkload(**flix, *collection, g, hot, 3);
  ASSERT_FALSE(queries.empty());
  std::vector<std::vector<Result>> before;
  for (const workload::DescendantQuery& q : queries) {
    before.push_back((*flix)->FindDescendantsByName(q.start, q.tag_name));
  }

  AdaptOptions options;
  options.hysteresis = 0;
  options.min_queries = 1;
  StrategyMigrator migrator(**flix, TestModel(), options);
  Recommendation rec;
  rec.partition = hot;
  rec.best = StrategyKind::kHopi;
  rec.migrate = true;

  const uint64_t migrated_before = CounterValue("flix.adapt.migrated");
  ASSERT_EQ(LiveKind(**flix, hot), StrategyKind::kApex);
  const Status status = migrator.Migrate(rec);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(LiveKind(**flix, hot), StrategyKind::kHopi);
  EXPECT_EQ(CounterValue("flix.adapt.migrated"), migrated_before + 1);

  // The migration is invisible to query results.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameResults(
        (*flix)->FindDescendantsByName(queries[i].start, queries[i].tag_name),
        before[i]))
        << "query " << i << " diverged after migration";
  }

  // The profiler now attributes the partition to its new strategy.
  for (const obs::PartitionProfile& p : (*flix)->Profile().partitions) {
    if (p.partition == hot) {
      EXPECT_EQ(p.strategy, "HOPI");
    }
  }

  // Migrating to the strategy already live is a no-op, not an error.
  EXPECT_TRUE(migrator.Migrate(rec).ok());
  EXPECT_EQ(CounterValue("flix.adapt.migrated"), migrated_before + 1);
}

TEST(AdaptTest, MigrationRequiresAdaptiveIss) {
  const auto collection = MakeCollection(47);
  ASSERT_TRUE(collection.ok());
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.iss_policy = IssPolicy::kForceApex;
  auto flix = Flix::Build(*collection, options);  // adaptive_iss stays false
  ASSERT_TRUE(flix.ok());

  StrategyMigrator migrator(**flix, TestModel());
  Recommendation rec;
  rec.partition = 0;
  rec.best = StrategyKind::kHopi;
  EXPECT_FALSE(migrator.Migrate(rec).ok());
  EXPECT_EQ(LiveKind(**flix, 0), StrategyKind::kApex);
}

TEST(AdaptTest, HysteresisSuppressesFlapping) {
  const auto collection = MakeCollection(53);
  ASSERT_TRUE(collection.ok());
  auto flix = BuildForcedApex(*collection);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = collection->BuildGraph();
  RunSkewedWorkload(**flix, *collection, g, /*partition=*/~0u, /*repeat=*/3);

  AdaptOptions eager;
  eager.hysteresis = 0;
  eager.min_queries = 1;
  {
    StrategyMigrator migrator(**flix, TestModel(), eager);
    const auto migrated = migrator.RunOnce();
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    EXPECT_GT(*migrated, 0u);
    // Immediately re-running finds every migrated partition already on its
    // cheapest strategy: a stable fixed point, not an oscillation.
    const auto again = migrator.RunOnce();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 0u);
  }

  // Flip the model so APEX looks marginally cheaper than the now-live HOPI,
  // but demand an absurd payback multiple: the win is positive yet under the
  // bar, so the verdict is rejected_hysteresis — and nothing migrates back.
  CostModel flipped = TestModel();
  flipped.apex.probe_ns = flipped.hopi.probe_ns / 2;
  flipped.apex.pull_ns = flipped.hopi.pull_ns / 2;
  AdaptOptions strict;
  strict.hysteresis = 1e9;
  strict.min_queries = 1;
  const uint64_t rejected_before =
      CounterValue("flix.adapt.rejected_hysteresis");
  const std::vector<Recommendation> recs =
      RecommendStrategies(**flix, (*flix)->Profile(), flipped, strict);
  bool saw_rejection = false;
  for (const Recommendation& rec : recs) {
    EXPECT_FALSE(rec.migrate);
    saw_rejection |= rec.rejected_hysteresis;
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(CounterValue("flix.adapt.rejected_hysteresis"), rejected_before);

  StrategyMigrator migrator(**flix, flipped, strict);
  const auto migrated = migrator.RunOnce();
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(*migrated, 0u);
}

TEST(AdaptTest, CorruptReplacementIsRejectedAndOldIndexStaysLive) {
  const auto collection = MakeCollection(59);
  ASSERT_TRUE(collection.ok());
  auto flix = BuildForcedApex(*collection);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = collection->BuildGraph();

  const uint32_t hot = 0;
  const std::vector<workload::DescendantQuery> queries =
      RunSkewedWorkload(**flix, *collection, g, hot, 2);
  ASSERT_FALSE(queries.empty());
  std::vector<std::vector<Result>> before;
  for (const workload::DescendantQuery& q : queries) {
    before.push_back((*flix)->FindDescendantsByName(q.start, q.tag_name));
  }

  MigrationOptions migration;
  migration.validate.deep = true;  // exhaustive probes: detection guaranteed
  migration.replacement_hook = [](index::PathIndex& replacement) {
    auto* hopi = dynamic_cast<index::HopiIndex*>(&replacement);
    ASSERT_NE(hopi, nullptr);
    bool skewed = false;
    for (NodeId v = 0; !skewed; ++v) {
      skewed = index::CorruptionHook::SkewHopiLabelDistance(*hopi, v);
    }
  };
  StrategyMigrator migrator(**flix, TestModel(), {}, migration);
  Recommendation rec;
  rec.partition = hot;
  rec.best = StrategyKind::kHopi;

  const uint64_t failed_before = CounterValue("flix.adapt.validation_failed");
  EXPECT_FALSE(migrator.Migrate(rec).ok());
  EXPECT_EQ(CounterValue("flix.adapt.validation_failed"), failed_before + 1);

  // The old index never left: still APEX, still answering correctly.
  EXPECT_EQ(LiveKind(**flix, hot), StrategyKind::kApex);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameResults(
        (*flix)->FindDescendantsByName(queries[i].start, queries[i].tag_name),
        before[i]));
  }
}

// TSan target: queries stream results from partition `hot` while a migrator
// thread swaps its index back and forth. Every query must see a complete,
// correct result set no matter which side of a swap its cursors landed on.
TEST(AdaptStressTest, QueriesRaceMigrationsSafely) {
  const auto collection = MakeCollection(61);
  ASSERT_TRUE(collection.ok());
  auto flix = BuildForcedApex(*collection);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = collection->BuildGraph();

  const uint32_t hot = 0;
  const std::vector<workload::DescendantQuery> queries =
      RunSkewedWorkload(**flix, *collection, g, hot, 1);
  ASSERT_FALSE(queries.empty());
  std::vector<std::vector<Result>> expected;
  for (const workload::DescendantQuery& q : queries) {
    expected.push_back((*flix)->FindDescendantsByName(q.start, q.tag_name));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const workload::DescendantQuery& q = queries[i % queries.size()];
        const std::vector<Result> results =
            (*flix)->FindDescendantsByName(q.start, q.tag_name);
        if (!SameResults(results, expected[i % queries.size()])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  StrategyMigrator migrator(**flix, TestModel());
  size_t swaps = 0;
  for (int round = 0; round < 6; ++round) {
    Recommendation rec;
    rec.partition = hot;
    rec.best = (round % 2 == 0) ? StrategyKind::kHopi : StrategyKind::kApex;
    const Status status = migrator.Migrate(rec);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ++swaps;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(swaps, 6u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(LiveKind(**flix, hot), StrategyKind::kApex);  // 6 swaps: back home
}

}  // namespace
}  // namespace flix::core
