#include "text/text_index.h"

#include <gtest/gtest.h>

#include "flix/flix.h"
#include "ontology/ontology.h"
#include "ontology/relaxation.h"
#include "workload/dblp_generator.h"

namespace flix::text {
namespace {

TEST(TokenizeTest, Basics) {
  EXPECT_EQ(Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(Tokenize("Matrix: Revolutions (2003)"),
            (std::vector<std::string>{"matrix", "revolutions", "2003"}));
  EXPECT_TRUE(Tokenize("  ... !!").empty());
  EXPECT_EQ(Tokenize("a a b"), (std::vector<std::string>{"a", "a", "b"}));
}

xml::Collection MovieTexts() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml(
      R"(<movie><title>Matrix Revolutions</title>)"
      R"(<plot>Neo fights the machine army in the real world</plot></movie>)",
      "m1").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<movie><title>Matrix Reloaded</title>)"
      R"(<plot>Neo learns more about the machine world</plot></movie>)",
      "m2").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<book><title>Gardening at Home</title>)"
      R"(<blurb>plants soil watering</blurb></book>)",
      "b1").ok());
  c.ResolveAllLinks();
  return c;
}

TEST(TextIndexTest, BuildCountsIndexedElements) {
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  // Six elements carry text (2x title+plot, title+blurb).
  EXPECT_EQ(index.NumIndexedElements(), 6u);
  EXPECT_GT(index.NumTerms(), 10u);
}

TEST(TextIndexTest, PostingsLookup) {
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  const auto* matrix = index.Postings("matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->size(), 2u);  // both titles
  // Case folding on lookup.
  EXPECT_EQ(index.Postings("MATRIX"), matrix);
  EXPECT_EQ(index.Postings("nonexistent"), nullptr);
}

TEST(TextIndexTest, SearchRanksByRelevance) {
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  const auto results = index.Search("matrix revolutions", 10);
  ASSERT_GE(results.size(), 2u);
  // The m1 title matches both terms and must rank first.
  EXPECT_EQ(results[0].element, c.GlobalId(0, 1));
  EXPECT_GT(results[0].score, results[1].score);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score);
    EXPECT_GT(results[i].score, 0.0);
  }
}

TEST(TextIndexTest, SearchHonorsK) {
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  EXPECT_LE(index.Search("the world machine neo", 1).size(), 1u);
  EXPECT_TRUE(index.Search("zzz qqq", 5).empty());
}

TEST(TextIndexTest, ScoreMatchesSearchScores) {
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  const auto results = index.Search("machine world", 10);
  for (const ScoredElement& r : results) {
    EXPECT_NEAR(index.Score(r.element, "machine world"), r.score, 1e-9);
  }
  // Untexted element scores zero.
  EXPECT_EQ(index.Score(c.GlobalId(0, 0), "machine world"), 0.0);
}

TEST(TextIndexTest, IdfDownweightsCommonTerms) {
  // "neo" appears in both plots; "army" only in one. For the element
  // containing both, the rare term contributes more weight.
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  const NodeId plot1 = c.GlobalId(0, 2);
  EXPECT_GT(index.Score(plot1, "army"), index.Score(plot1, "neo"));
}

TEST(TextIndexTest, PredicateScoringViaIndex) {
  // The relaxation layer can score ~"..." predicates with the text index.
  const xml::Collection c = MovieTexts();
  const TextIndex index = TextIndex::Build(c);
  auto flix = core::Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const ontology::Ontology onto = ontology::Ontology::MovieOntology();

  const auto q =
      ontology::ParsePathQuery(R"(//movie[title~"matrix revolutions"]//plot)");
  ASSERT_TRUE(q.ok());
  ontology::RelaxedQueryOptions options;
  options.text_index = &index;
  options.text_floor = 0.1;
  const auto matches = ontology::EvaluatePathQuery(**flix, onto, *q, options);
  ASSERT_EQ(matches.size(), 2u);
  // The full-phrase title outranks the partial match.
  EXPECT_EQ(matches[0].node, c.GlobalId(0, 2));
  EXPECT_EQ(matches[1].node, c.GlobalId(1, 2));
  EXPECT_GT(matches[0].score, matches[1].score);
}

TEST(TextIndexTest, ScalesToDblpCorpus) {
  workload::DblpOptions options;
  options.num_publications = 200;
  const auto collection = workload::GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  const TextIndex index = TextIndex::Build(*collection);
  EXPECT_GT(index.NumIndexedElements(), 2000u);
  EXPECT_GT(index.MemoryBytes(), 0u);
  const auto results = index.Search("xml indexing", 25);
  EXPECT_EQ(results.size(), 25u);
}

}  // namespace
}  // namespace flix::text
