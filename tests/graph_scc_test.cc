#include "graph/scc.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/traversal.h"

namespace flix::graph {
namespace {

TEST(SccTest, SingletonsInDag) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
  EXPECT_TRUE(IsAcyclic(g));
}

TEST(SccTest, SimpleCycleIsOneComponent) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.members[0].size(), 3u);
  EXPECT_FALSE(IsAcyclic(g));
}

TEST(SccTest, TwoCyclesWithBridge) {
  // {0,1} cycle -> bridge -> {2,3} cycle.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
}

TEST(SccTest, ReverseTopologicalNumbering) {
  // Tarjan emits sinks first: an edge between components goes from a
  // higher-numbered to a lower-numbered component.
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  const SccResult scc = StronglyConnectedComponents(g);
  for (NodeId u = 0; u < 5; ++u) {
    for (const Digraph::Arc& arc : g.OutArcs(u)) {
      EXPECT_GT(scc.component_of[u], scc.component_of[arc.target]);
    }
  }
}

TEST(SccTest, SelfLoopBreaksAcyclicity) {
  Digraph g(2);
  g.AddEdge(0, 0);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_FALSE(IsAcyclic(g));
}

TEST(SccTest, DeepChainNoStackOverflow) {
  constexpr size_t kN = 200000;
  Digraph g(kN);
  for (NodeId i = 0; i + 1 < kN; ++i) g.AddEdge(i, i + 1);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, kN);
}

TEST(CondenseTest, CondensationIsAcyclicAndPreservesReachability) {
  Rng rng(77);
  Digraph g(40);
  for (int e = 0; e < 100; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(40)),
              static_cast<NodeId>(rng.Uniform(40)));
  }
  const SccResult scc = StronglyConnectedComponents(g);
  const Digraph dag = Condense(g, scc);
  EXPECT_TRUE(IsAcyclic(dag));

  // Reachability between nodes must match reachability between components.
  const ReachabilityOracle node_oracle(g);
  const ReachabilityOracle comp_oracle(dag);
  for (NodeId u = 0; u < 40; u += 7) {
    for (NodeId v = 0; v < 40; v += 5) {
      const bool nodes = node_oracle.IsReachable(u, v);
      const bool comps =
          comp_oracle.IsReachable(scc.component_of[u], scc.component_of[v]);
      EXPECT_EQ(nodes, comps) << u << " -> " << v;
    }
  }
}

TEST(CondenseTest, EdgesDeduplicated) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  const SccResult scc = StronglyConnectedComponents(g);
  const Digraph dag = Condense(g, scc);
  EXPECT_EQ(dag.NumNodes(), 3u);
  // {0,1} -> 2, {0,1} -> 3, 2 -> 3: three distinct component edges.
  EXPECT_EQ(dag.NumEdges(), 3u);
}

}  // namespace
}  // namespace flix::graph
