// Property tests: every path indexing strategy must agree with the BFS
// oracle on every query type, across a sweep of graph families, sizes,
// densities and seeds (TEST_P over strategy x graph family).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "graph/traversal.h"
#include "graph/tree_utils.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/path_index.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {
namespace {

enum class GraphFamily {
  kForest,       // random forest (all strategies, incl. PPO)
  kDag,          // random DAG
  kCyclic,       // random digraph with cycles
  kLinkedDocs,   // small trees joined by random link edges
};

std::string FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kForest: return "Forest";
    case GraphFamily::kDag: return "Dag";
    case GraphFamily::kCyclic: return "Cyclic";
    case GraphFamily::kLinkedDocs: return "LinkedDocs";
  }
  return "?";
}

graph::Digraph MakeGraph(GraphFamily family, size_t n, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  constexpr size_t kTags = 5;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(kTags)));
  }
  switch (family) {
    case GraphFamily::kForest:
      for (NodeId i = 1; i < n; ++i) {
        if (rng.Bernoulli(0.85)) {
          g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
        }
      }
      break;
    case GraphFamily::kDag:
      for (size_t e = 0; e < 2 * n; ++e) {
        NodeId u = static_cast<NodeId>(rng.Uniform(n));
        NodeId v = static_cast<NodeId>(rng.Uniform(n));
        if (u == v) continue;
        if (u > v) std::swap(u, v);
        g.AddEdge(u, v);
      }
      break;
    case GraphFamily::kCyclic:
      for (size_t e = 0; e < 2 * n; ++e) {
        g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                  static_cast<NodeId>(rng.Uniform(n)));
      }
      break;
    case GraphFamily::kLinkedDocs: {
      // Trees of ~8 nodes plus n/4 random link edges.
      const size_t doc = 8;
      for (NodeId i = 0; i < n; ++i) {
        if (i % doc != 0) {
          const NodeId base = i - (i % doc);
          g.AddEdge(base + static_cast<NodeId>(rng.Uniform(i % doc)), i,
                    graph::EdgeKind::kTree);
        }
      }
      for (size_t e = 0; e < n / 4; ++e) {
        g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                  static_cast<NodeId>(rng.Uniform(n)),
                  graph::EdgeKind::kLink);
      }
      break;
    }
  }
  return g;
}

struct Params {
  StrategyKind strategy;
  GraphFamily family;
  size_t nodes;
  uint64_t seed;
};

std::unique_ptr<PathIndex> BuildIndex(StrategyKind kind,
                                      const graph::Digraph& g) {
  switch (kind) {
    case StrategyKind::kPpo: {
      auto built = PpoIndex::Build(g);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case StrategyKind::kHopi:
      return HopiIndex::Build(g);
    case StrategyKind::kApex:
      return ApexIndex::Build(g);
    case StrategyKind::kTransitiveClosure: {
      auto built = TransitiveClosureIndex::Build(g);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case StrategyKind::kSummary:
      // The F&B variant is the strongest summary; D(k) is covered by the
      // dedicated summary-index tests.
      return SummaryIndex::BuildFb(g);
  }
  return nullptr;
}

class IndexPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(IndexPropertyTest, AgreesWithOracle) {
  const Params& p = GetParam();
  const graph::Digraph g = MakeGraph(p.family, p.nodes, p.seed);
  if (p.strategy == StrategyKind::kPpo && !graph::IsForest(g)) {
    GTEST_SKIP() << "PPO only applies to forests";
  }
  const std::unique_ptr<PathIndex> index = BuildIndex(p.strategy, g);
  ASSERT_NE(index, nullptr);
  const graph::ReachabilityOracle oracle(g);

  const size_t step = std::max<size_t>(1, p.nodes / 12);
  for (NodeId start = 0; start < p.nodes; start += step) {
    // Wildcard and tag-filtered descendants: exact match including order.
    EXPECT_EQ(index->Descendants(start), oracle.Descendants(start))
        << "descendants from " << start;
    for (TagId tag = 0; tag < 5; ++tag) {
      EXPECT_EQ(index->DescendantsByTag(start, tag),
                oracle.DescendantsByTag(start, tag))
          << "start " << start << " tag " << tag;
      EXPECT_EQ(index->AncestorsByTag(start, tag),
                oracle.AncestorsByTag(start, tag))
          << "ancestors of " << start << " tag " << tag;
    }
    // Point queries.
    for (NodeId target = 0; target < p.nodes; target += step + 1) {
      EXPECT_EQ(index->DistanceBetween(start, target),
                oracle.Distance(start, target))
          << start << "->" << target;
      EXPECT_EQ(index->IsReachable(start, target),
                oracle.IsReachable(start, target));
    }
  }

  // ReachableAmong with a mixed target list.
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < p.nodes; v += 3) targets.push_back(v);
  for (NodeId start = 0; start < p.nodes; start += 2 * step) {
    std::vector<NodeDist> expected;
    for (const NodeId t : targets) {
      const Distance d = t == start ? 0 : oracle.Distance(start, t);
      if (d != kUnreachable) expected.push_back({t, d});
    }
    SortByDistance(expected);
    EXPECT_EQ(index->ReachableAmong(start, targets), expected);
  }
}

std::vector<Params> MakeAllParams() {
  std::vector<Params> params;
  const StrategyKind strategies[] = {
      StrategyKind::kPpo, StrategyKind::kHopi, StrategyKind::kApex,
      StrategyKind::kTransitiveClosure, StrategyKind::kSummary};
  const GraphFamily families[] = {GraphFamily::kForest, GraphFamily::kDag,
                                  GraphFamily::kCyclic,
                                  GraphFamily::kLinkedDocs};
  const size_t sizes[] = {12, 40, 90};
  const uint64_t seeds[] = {1, 2, 3};
  for (const StrategyKind s : strategies) {
    for (const GraphFamily f : families) {
      // PPO only on forests; skip generating the other families for it.
      if (s == StrategyKind::kPpo && f != GraphFamily::kForest) continue;
      for (const size_t n : sizes) {
        for (const uint64_t seed : seeds) {
          params.push_back({s, f, n, seed});
        }
      }
    }
  }
  return params;
}

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return std::string(StrategyName(p.strategy)) + "_" + FamilyName(p.family) +
         "_n" + std::to_string(p.nodes) + "_s" + std::to_string(p.seed);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, IndexPropertyTest,
                         ::testing::ValuesIn(MakeAllParams()), ParamName);

}  // namespace
}  // namespace flix::index
