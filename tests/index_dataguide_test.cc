#include "index/dataguide.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace flix::index {
namespace {

// doc(0) -> a(1) -> b(2), doc -> a(3) -> c(4): label paths doc, doc/a,
// doc/a/b, doc/a/c.
graph::Digraph SampleTree() {
  graph::Digraph g;
  g.AddNode(0);  // doc
  g.AddNode(1);  // a
  g.AddNode(2);  // b
  g.AddNode(1);  // a
  g.AddNode(3);  // c
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  return g;
}

TEST(DataGuideTest, LookupLabelPaths) {
  auto built = DataGuide::Build(SampleTree());
  ASSERT_TRUE(built.ok());
  const auto& guide = *built;
  EXPECT_EQ(guide->Lookup({0}), (std::vector<NodeId>{0}));
  // Both a-elements share the path doc/a.
  EXPECT_EQ(guide->Lookup({0, 1}), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(guide->Lookup({0, 1, 2}), (std::vector<NodeId>{2}));
  EXPECT_EQ(guide->Lookup({0, 1, 3}), (std::vector<NodeId>{4}));
}

TEST(DataGuideTest, MissingPathsEmpty) {
  auto built = DataGuide::Build(SampleTree());
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE((*built)->Lookup({}).empty());
  EXPECT_TRUE((*built)->Lookup({1}).empty());        // not a root tag
  EXPECT_TRUE((*built)->Lookup({0, 2}).empty());     // no doc/b
  EXPECT_TRUE((*built)->Lookup({0, 1, 2, 3}).empty());
}

TEST(DataGuideTest, StrongGuideSharesStates) {
  // Two identical subtrees produce one state per label path, not per node.
  auto built = DataGuide::Build(SampleTree());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->NumStates(), 4u);  // doc, doc/a, doc/a/b, doc/a/c
}

TEST(DataGuideTest, MultipleRoots) {
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(0);
  g.AddNode(1);
  g.AddEdge(0, 2);
  auto built = DataGuide::Build(g);
  ASSERT_TRUE(built.ok());
  // Roots with the same tag share the initial state.
  EXPECT_EQ((*built)->Lookup({0}), (std::vector<NodeId>{0, 1}));
}

TEST(DataGuideTest, DagTargetSets) {
  // Shared node under two paths of the same label sequence.
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  auto built = DataGuide::Build(g);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->Lookup({0, 1, 2}), (std::vector<NodeId>{3}));
}

TEST(DataGuideTest, MaxStatesGuard) {
  graph::Digraph g;
  for (int i = 0; i < 20; ++i) g.AddNode(static_cast<TagId>(i));
  for (NodeId i = 0; i + 1 < 20; ++i) g.AddEdge(i, i + 1);
  DataGuideOptions options;
  options.max_states = 5;
  const auto built = DataGuide::Build(g, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kOutOfRange);
}

TEST(DataGuideTest, MemoryReported) {
  auto built = DataGuide::Build(SampleTree());
  ASSERT_TRUE(built.ok());
  EXPECT_GT((*built)->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace flix::index
