// Tests for the Section 7 "future work" features implemented beyond the
// paper's core: exact-order evaluation, query statistics + self-tuning
// advice, the query result cache, and element-level meta documents.
#include <gtest/gtest.h>

#include <set>

#include "flix/flix.h"
#include "flix/query_cache.h"
#include "graph/traversal.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"

namespace flix::core {
namespace {

// Same cyclic three-document collection as flix_pee_test.
xml::Collection ChainedCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml("<a><b/><link href=\"d1\"/></a>", "d0").ok());
  EXPECT_TRUE(c.AddXml("<a><b><link href=\"d2#mid\"/></b></a>", "d1").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<a><c id="mid"><b/></c><link href="d0"/></a>)", "d2").ok());
  c.ResolveAllLinks();
  return c;
}

TEST(ExactModeTest, DistancesAreExactAndSorted) {
  const auto collection = workload::GenerateSynthetic({.seed = 61});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);

  for (const MdbConfig config :
       {MdbConfig::kNaive, MdbConfig::kUnconnectedHopi, MdbConfig::kHybrid}) {
    FlixOptions options;
    options.config = config;
    options.partition_bound = 60;
    auto flix = Flix::Build(*collection, options);
    ASSERT_TRUE(flix.ok());

    const TagId tag = collection->pool().Lookup("t1");
    ASSERT_NE(tag, kInvalidTag);
    for (DocId d = 0; d < collection->NumDocuments(); d += 3) {
      const NodeId start = collection->GlobalId(d, 0);
      QueryOptions qopts;
      qopts.exact = true;
      std::vector<Result> results;
      (*flix)->pee().FindDescendantsByTag(start, tag, qopts,
                                          [&](const Result& r) {
                                            results.push_back(r);
                                            return true;
                                          });
      const std::vector<graph::NodeDist> expected =
          oracle.DescendantsByTag(start, tag);
      ASSERT_EQ(results.size(), expected.size());
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].node, expected[i].node);
        EXPECT_EQ(results[i].distance, expected[i].distance)
            << "exact distance mismatch, config "
            << MdbConfigName(config) << " start " << start;
      }
    }
  }
}

TEST(ExactModeTest, ExactPointDistanceMatchesOracle) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      EXPECT_EQ((*flix)->FindDistance(a, b), oracle.Distance(a, b))
          << a << "->" << b;
    }
  }
}

TEST(ExactModeTest, RespectsMaxResultsAfterSorting) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  QueryOptions qopts;
  qopts.exact = true;
  qopts.max_results = 2;
  std::vector<Result> results;
  (*flix)->pee().FindDescendants(c.GlobalId(0, 0), qopts,
                                 [&](const Result& r) {
                                   results.push_back(r);
                                   return true;
                                 });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LE(results[0].distance, results[1].distance);
  EXPECT_EQ(results[0].distance, 1);  // nearest descendants first
}

TEST(QueryStatsTest, CountersPopulated) {
  // Like ChainedCollection, but d2's back link to d0 hangs *below* the
  // entry anchor, so the d0 -> d1 -> d2 -> d0 cycle is actually traversed
  // and duplicate elimination kicks in.
  xml::Collection c;
  ASSERT_TRUE(c.AddXml("<a><b/><link href=\"d1\"/></a>", "d0").ok());
  ASSERT_TRUE(c.AddXml("<a><b><link href=\"d2#mid\"/></b></a>", "d1").ok());
  ASSERT_TRUE(c.AddXml(
      R"(<a><c id="mid"><b/><link href="d0"/></c></a>)", "d2").ok());
  c.ResolveAllLinks();
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  QueryStats stats;
  std::vector<Result> results;
  (*flix)->pee().FindDescendantsByTag(
      c.GlobalId(0, 0), c.pool().Lookup("b"), {},
      [&](const Result& r) {
        results.push_back(r);
        return true;
      },
      &stats);
  EXPECT_GT(stats.entries_processed, 1u);  // crosses meta documents
  EXPECT_GT(stats.links_followed, 0u);
  EXPECT_GT(stats.index_probes, 0u);
  // The d2 -> d0 back link eventually produces a dominated entry.
  EXPECT_GT(stats.entries_dominated, 0u);
}

TEST(QueryStatsTest, CumulativeStatsAndTuningAdvice) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = MdbConfig::kNaive;  // maximal link following
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());

  EXPECT_FALSE((*flix)->RecommendReconfiguration().rebuild_recommended);

  for (int i = 0; i < 5; ++i) {
    (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "b");
  }
  const QueryStats total = (*flix)->CumulativeQueryStats();
  EXPECT_GT(total.links_followed, 0u);

  // A tiny threshold must trigger the advice; a huge one must not.
  const auto strict = (*flix)->RecommendReconfiguration(0.1);
  EXPECT_TRUE(strict.rebuild_recommended);
  EXPECT_GT(strict.links_per_query, 0.1);
  EXPECT_FALSE(strict.reason.empty());
  EXPECT_FALSE((*flix)->RecommendReconfiguration(1e9).rebuild_recommended);
}

TEST(QueryCacheTest, LruSemantics) {
  QueryCache cache(2);
  cache.Insert(1, 10, {{5, 1}});
  cache.Insert(2, 10, {{6, 1}});
  std::vector<Result> out;
  EXPECT_TRUE(cache.Lookup(1, 10, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 5u);
  // Inserting a third entry evicts the least recently used (2, 10).
  cache.Insert(3, 10, {{7, 1}});
  EXPECT_FALSE(cache.Lookup(2, 10, &out));
  EXPECT_TRUE(cache.Lookup(1, 10, &out));
  EXPECT_TRUE(cache.Lookup(3, 10, &out));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.hits(), 3u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(QueryCacheTest, ZeroCapacityDisabled) {
  QueryCache cache(0);
  cache.Insert(1, 1, {{2, 1}});
  std::vector<Result> out;
  EXPECT_FALSE(cache.Lookup(1, 1, &out));
}

TEST(QueryCacheTest, FacadeUsesCache) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.query_cache_capacity = 8;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  ASSERT_NE((*flix)->query_cache(), nullptr);

  const NodeId start = c.GlobalId(0, 0);
  const auto first = (*flix)->FindDescendantsByName(start, "b");
  const auto second = (*flix)->FindDescendantsByName(start, "b");
  EXPECT_EQ(first, second);
  EXPECT_GE((*flix)->query_cache()->hits(), 1u);

  // Constrained queries bypass the cache but still return correct results.
  QueryOptions limited;
  limited.max_results = 1;
  EXPECT_EQ((*flix)->FindDescendantsByName(start, "b", limited).size(), 1u);
}

TEST(ElementLevelTest, PartitionsMaySplitDocuments) {
  // One big document plus small ones; with element-level partitioning and a
  // small bound, the big document must be split across meta documents.
  xml::Collection c;
  std::string big = "<root>";
  for (int i = 0; i < 60; ++i) big += "<item/>";
  big += "</root>";
  ASSERT_TRUE(c.AddXml(big, "big").ok());
  ASSERT_TRUE(c.AddXml("<a><b/></a>", "small").ok());
  c.ResolveAllLinks();

  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.partition_bound = 20;
  options.element_level_partitions = true;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());

  std::set<uint32_t> metas_of_big;
  for (xml::ElementId e = 0; e < c.document(0).NumElements(); ++e) {
    metas_of_big.insert(
        (*flix)->meta_documents().meta_of_node[c.GlobalId(0, e)]);
  }
  EXPECT_GT(metas_of_big.size(), 1u);

  // Queries still return the exact result set.
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const TagId item = c.pool().Lookup("item");
  const auto results = (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "item");
  EXPECT_EQ(results.size(), oracle.DescendantsByTag(c.GlobalId(0, 0), item).size());
}

TEST(ElementLevelTest, DocumentLevelKeepsDocumentsWhole) {
  xml::Collection c;
  std::string big = "<root>";
  for (int i = 0; i < 60; ++i) big += "<item/>";
  big += "</root>";
  ASSERT_TRUE(c.AddXml(big, "big").ok());
  c.ResolveAllLinks();
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.partition_bound = 20;
  options.element_level_partitions = false;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  std::set<uint32_t> metas;
  for (xml::ElementId e = 0; e < c.document(0).NumElements(); ++e) {
    metas.insert((*flix)->meta_documents().meta_of_node[c.GlobalId(0, e)]);
  }
  EXPECT_EQ(metas.size(), 1u);
}

}  // namespace
}  // namespace flix::core
