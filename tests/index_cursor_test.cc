// Cursor contract tests: every strategy's lazy cursors must (a) yield
// exactly the elements the BFS oracle (and hence the materialized vector
// methods) produce, in ascending (distance, node) order; (b) report sound,
// monotone BoundHints — a hint is a lower bound on every element still to
// come and reaches kUnreachable once the cursor is exhausted; and (c)
// tolerate early close after any prefix (the whole point of streaming).
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "common/rng.h"
#include "graph/traversal.h"
#include "graph/tree_utils.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/path_index.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {
namespace {

enum class GraphFamily {
  kForest,       // random forest (all strategies, incl. PPO)
  kDag,          // random DAG
  kCyclic,       // random digraph with cycles
  kLinkedDocs,   // small trees joined by random link edges
};

std::string FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kForest: return "Forest";
    case GraphFamily::kDag: return "Dag";
    case GraphFamily::kCyclic: return "Cyclic";
    case GraphFamily::kLinkedDocs: return "LinkedDocs";
  }
  return "?";
}

graph::Digraph MakeGraph(GraphFamily family, size_t n, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  constexpr size_t kTags = 5;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(kTags)));
  }
  switch (family) {
    case GraphFamily::kForest:
      for (NodeId i = 1; i < n; ++i) {
        if (rng.Bernoulli(0.85)) {
          g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
        }
      }
      break;
    case GraphFamily::kDag:
      for (size_t e = 0; e < 2 * n; ++e) {
        NodeId u = static_cast<NodeId>(rng.Uniform(n));
        NodeId v = static_cast<NodeId>(rng.Uniform(n));
        if (u == v) continue;
        if (u > v) std::swap(u, v);
        g.AddEdge(u, v);
      }
      break;
    case GraphFamily::kCyclic:
      for (size_t e = 0; e < 2 * n; ++e) {
        g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                  static_cast<NodeId>(rng.Uniform(n)));
      }
      break;
    case GraphFamily::kLinkedDocs: {
      const size_t doc = 8;
      for (NodeId i = 0; i < n; ++i) {
        if (i % doc != 0) {
          const NodeId base = i - (i % doc);
          g.AddEdge(base + static_cast<NodeId>(rng.Uniform(i % doc)), i,
                    graph::EdgeKind::kTree);
        }
      }
      for (size_t e = 0; e < n / 4; ++e) {
        g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                  static_cast<NodeId>(rng.Uniform(n)),
                  graph::EdgeKind::kLink);
      }
      break;
    }
  }
  return g;
}

struct Params {
  StrategyKind strategy;
  GraphFamily family;
  size_t nodes;
  uint64_t seed;
};

std::unique_ptr<PathIndex> BuildIndex(StrategyKind kind,
                                      const graph::Digraph& g) {
  switch (kind) {
    case StrategyKind::kPpo: {
      auto built = PpoIndex::Build(g);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case StrategyKind::kHopi:
      return HopiIndex::Build(g);
    case StrategyKind::kApex:
      return ApexIndex::Build(g);
    case StrategyKind::kTransitiveClosure: {
      auto built = TransitiveClosureIndex::Build(g);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case StrategyKind::kSummary:
      return SummaryIndex::BuildFb(g);
  }
  return nullptr;
}

using CursorFactory = std::function<std::unique_ptr<NodeDistCursor>()>;

// Drains a fresh cursor while checking the BoundHint contract, compares the
// stream against `expected`, then re-opens and abandons the cursor after a
// half-way prefix to prove early close yields the same prefix and is safe.
void CheckCursorContract(const CursorFactory& factory,
                         const std::vector<NodeDist>& expected,
                         const std::string& context) {
  SCOPED_TRACE(context);
  std::unique_ptr<NodeDistCursor> cursor = factory();
  ASSERT_NE(cursor, nullptr);

  // kUnreachable (-1) means "nothing left" and orders above every distance.
  const auto rank = [](Distance d) {
    return d == kUnreachable ? std::numeric_limits<int64_t>::max()
                             : static_cast<int64_t>(d);
  };
  std::vector<NodeDist> drained;
  int64_t last_hint = 0;
  while (true) {
    const Distance hint = cursor->BoundHint();
    EXPECT_GE(rank(hint), last_hint) << "BoundHint went backwards";
    last_hint = rank(hint);
    // A finite hint over an empty remainder is vacuously valid; exhaustion
    // is only observable through Next, after which the hint must flip to
    // kUnreachable (asserted below).
    const std::optional<NodeDist> nd = cursor->Next();
    if (!nd.has_value()) break;
    EXPECT_GE(static_cast<int64_t>(nd->distance), rank(hint))
        << "emitted below the promised bound";
    drained.push_back(*nd);
  }
  EXPECT_EQ(cursor->BoundHint(), kUnreachable)
      << "exhausted cursor must report kUnreachable";
  EXPECT_EQ(drained, expected);

  // Early close: the first half must match, and destroying the half-pulled
  // cursor (end of scope) must be clean.
  std::unique_ptr<NodeDistCursor> prefix_cursor = factory();
  const size_t prefix = expected.size() / 2;
  for (size_t i = 0; i < prefix; ++i) {
    const std::optional<NodeDist> nd = prefix_cursor->Next();
    ASSERT_TRUE(nd.has_value());
    EXPECT_EQ(*nd, expected[i]);
  }
}

class IndexCursorTest : public ::testing::TestWithParam<Params> {};

TEST_P(IndexCursorTest, CursorsMatchOracleAndHonorContract) {
  const Params& p = GetParam();
  const graph::Digraph g = MakeGraph(p.family, p.nodes, p.seed);
  if (p.strategy == StrategyKind::kPpo && !graph::IsForest(g)) {
    GTEST_SKIP() << "PPO only applies to forests";
  }
  const std::unique_ptr<PathIndex> index = BuildIndex(p.strategy, g);
  ASSERT_NE(index, nullptr);
  const graph::ReachabilityOracle oracle(g);

  const size_t step = std::max<size_t>(1, p.nodes / 8);
  for (NodeId start = 0; start < p.nodes; start += step) {
    CheckCursorContract(
        [&] { return index->DescendantsCursor(start); },
        oracle.Descendants(start),
        "descendants from " + std::to_string(start));
    for (TagId tag = 0; tag < 5; ++tag) {
      const std::string at = "start " + std::to_string(start) + " tag " +
                             std::to_string(tag);
      CheckCursorContract(
          [&] { return index->DescendantsByTagCursor(start, tag); },
          oracle.DescendantsByTag(start, tag), "descendants-by-tag " + at);
      CheckCursorContract(
          [&] { return index->AncestorsByTagCursor(start, tag); },
          oracle.AncestorsByTag(start, tag), "ancestors-by-tag " + at);
    }
  }

  // Among cursors over a mixed membership list (`start` itself included, so
  // the distance-0 self hit is covered too).
  std::vector<NodeId> members;
  for (NodeId v = 0; v < p.nodes; v += 3) members.push_back(v);
  for (NodeId start = 0; start < p.nodes; start += 2 * step) {
    std::vector<NodeDist> reachable;
    std::vector<NodeDist> ancestors;
    for (const NodeId m : members) {
      const Distance down = m == start ? 0 : oracle.Distance(start, m);
      if (down != kUnreachable) reachable.push_back({m, down});
      const Distance up = m == start ? 0 : oracle.Distance(m, start);
      if (up != kUnreachable) ancestors.push_back({m, up});
    }
    SortByDistance(reachable);
    SortByDistance(ancestors);
    CheckCursorContract(
        [&] { return index->ReachableAmongCursor(start, members); },
        reachable, "reachable-among from " + std::to_string(start));
    CheckCursorContract(
        [&] { return index->AncestorsAmongCursor(start, members); },
        ancestors, "ancestors-among from " + std::to_string(start));
  }
}

std::vector<Params> MakeAllParams() {
  std::vector<Params> params;
  const StrategyKind strategies[] = {
      StrategyKind::kPpo, StrategyKind::kHopi, StrategyKind::kApex,
      StrategyKind::kTransitiveClosure, StrategyKind::kSummary};
  const GraphFamily families[] = {GraphFamily::kForest, GraphFamily::kDag,
                                  GraphFamily::kCyclic,
                                  GraphFamily::kLinkedDocs};
  const size_t sizes[] = {12, 40};
  const uint64_t seeds[] = {1, 2};
  for (const StrategyKind s : strategies) {
    for (const GraphFamily f : families) {
      if (s == StrategyKind::kPpo && f != GraphFamily::kForest) continue;
      for (const size_t n : sizes) {
        for (const uint64_t seed : seeds) {
          params.push_back({s, f, n, seed});
        }
      }
    }
  }
  return params;
}

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return std::string(StrategyName(p.strategy)) + "_" + FamilyName(p.family) +
         "_n" + std::to_string(p.nodes) + "_s" + std::to_string(p.seed);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, IndexCursorTest,
                         ::testing::ValuesIn(MakeAllParams()), ParamName);

}  // namespace
}  // namespace flix::index
