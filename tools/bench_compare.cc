// bench_compare: diff two BENCH_*.json envelopes and fail on regressions.
//
//   $ bench_compare baseline.json candidate.json [options]
//
// Each input is either a raw envelope (the {...} document emitted by
// bench::EmitMetricsBlock) or a full bench stdout log containing a
// "BENCH_<name>.json: {...}" line (the last such line wins). Envelopes
// carry their own identity — schema_version, bench name, and the config
// key/value list — and the tool refuses to compare two runs whose identity
// differs: a diff between different workloads is noise, not a regression.
//
// Comparison model: every counter, gauge, and histogram of the *baseline*
// must be present in the candidate and must not grow beyond its tolerance
// (counters/gauges are work measures; less is better). Histograms compare
// their count with the count tolerance and their mean with the time
// tolerance when the name ends in "_ns". Metrics only the candidate has are
// reported but never fail the run (new instrumentation must not break CI).
//
// Options:
//   --tol FRAC         tolerance for counters/gauges/histogram counts
//                      (default 0.02 — deterministic work counters)
//   --time-tol FRAC    tolerance for nanosecond means (default 1.0; wall
//                      times on shared CI machines are very noisy)
//   --metric-tol NAME=FRAC   per-metric override (repeatable)
//   --ignore NAME      skip a metric entirely (repeatable)
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage / refusal.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace {

using flix::obs::HistogramStats;
using flix::obs::MetricsSnapshot;

struct Envelope {
  uint64_t schema_version = 0;
  std::string bench;
  std::map<std::string, std::string> config;
  MetricsSnapshot metrics;
};

// Extracts the JSON object starting at `start` (which must be '{'),
// honoring nested braces and string literals.
bool ExtractObject(std::string_view text, size_t start, std::string* out) {
  if (start >= text.size() || text[start] != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        *out = std::string(text.substr(start, i - start + 1));
        return true;
      }
    }
  }
  return false;
}

// Pulls the envelope document out of `content`: either the whole file is
// the envelope, or the last "BENCH_<name>.json: " line carries it.
bool FindEnvelopeText(const std::string& content, std::string* out) {
  size_t last = std::string::npos;
  size_t pos = 0;
  while ((pos = content.find("BENCH_", pos)) != std::string::npos) {
    const size_t colon = content.find(".json: ", pos);
    if (colon != std::string::npos) last = colon + std::strlen(".json: ");
    pos += 6;
  }
  if (last != std::string::npos) return ExtractObject(content, last, out);
  const size_t brace = content.find('{');
  if (brace == std::string::npos) return false;
  return ExtractObject(content, brace, out);
}

bool ParseEnvelope(const std::string& text, Envelope* env, std::string* error) {
  // The metrics sub-document goes to obs::FromJson verbatim; everything
  // before it is the fixed-order identity header EmitMetricsBlock writes.
  const size_t metrics_key = text.find("\"metrics\":");
  if (metrics_key == std::string::npos) {
    *error = "no \"metrics\" key (schema_version 1 block? re-run the bench)";
    return false;
  }
  std::string metrics_json;
  if (!ExtractObject(text, text.find('{', metrics_key), &metrics_json)) {
    *error = "malformed \"metrics\" object";
    return false;
  }
  if (!flix::obs::FromJson(metrics_json, &env->metrics)) {
    *error = "metrics snapshot failed to parse";
    return false;
  }

  flix::obs::jsonutil::JsonCursor cursor(
      std::string_view(text).substr(0, metrics_key));
  std::string key;
  if (!cursor.Consume('{') || !cursor.ReadString(&key) ||
      key != "schema_version" || !cursor.Consume(':') ||
      !cursor.ReadU64(&env->schema_version)) {
    *error = "missing leading \"schema_version\"";
    return false;
  }
  if (!cursor.Consume(',') || !cursor.ReadString(&key) || key != "bench" ||
      !cursor.Consume(':') || !cursor.ReadString(&env->bench)) {
    *error = "missing \"bench\" name";
    return false;
  }
  if (!cursor.Consume(',') || !cursor.ReadString(&key) || key != "config" ||
      !cursor.Consume(':') || !cursor.Consume('{')) {
    *error = "missing \"config\" object";
    return false;
  }
  if (!cursor.Consume('}')) {
    do {
      std::string value;
      if (!cursor.ReadString(&key) || !cursor.Consume(':') ||
          !cursor.ReadString(&value)) {
        *error = "malformed \"config\" entry";
        return false;
      }
      env->config[key] = value;
    } while (cursor.Consume(','));
    if (!cursor.Consume('}')) {
      *error = "unterminated \"config\" object";
      return false;
    }
  }
  return true;
}

bool LoadEnvelope(const char* path, Envelope* env) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text;
  if (!FindEnvelopeText(buffer.str(), &text)) {
    std::fprintf(stderr, "bench_compare: %s: no BENCH_*.json envelope found\n",
                 path);
    return false;
  }
  std::string error;
  if (!ParseEnvelope(text, env, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path, error.c_str());
    return false;
  }
  if (env->schema_version != 2) {
    std::fprintf(stderr,
                 "bench_compare: %s: unsupported schema_version %llu "
                 "(expected 2)\n",
                 path, static_cast<unsigned long long>(env->schema_version));
    return false;
  }
  return true;
}

struct Options {
  double tol = 0.02;
  double time_tol = 1.0;
  std::map<std::string, double> metric_tol;
  std::set<std::string> ignore;
};

bool IsTimeMetric(const std::string& name) {
  return name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

double ToleranceFor(const Options& opts, const std::string& name,
                    bool time_scale) {
  const auto it = opts.metric_tol.find(name);
  if (it != opts.metric_tol.end()) return it->second;
  return time_scale ? opts.time_tol : opts.tol;
}

class Comparison {
 public:
  explicit Comparison(const Options& opts) : opts_(opts) {}

  // Flags `name` when the candidate exceeds baseline * (1 + tolerance).
  // Baselines of zero only pass a zero candidate when work is counted
  // (relative tolerance has no meaning at zero).
  void Compare(const std::string& name, double base, double cand,
               bool time_scale) {
    if (opts_.ignore.count(name) != 0) return;
    const double tol = ToleranceFor(opts_, name, time_scale);
    const double limit = base * (1.0 + tol);
    if (cand > limit && cand - base > 1e-9) {
      if (base == 0 && !time_scale && cand <= tol * 100) {
        // Tiny absolute drift on a zero baseline (e.g. one extra cache
        // miss): report, don't fail.
        Note(name, base, cand);
        return;
      }
      std::printf("REGRESSION %-44s %14.6g -> %14.6g (+%.1f%%, tol %.0f%%)\n",
                  name.c_str(), base, cand,
                  base > 0 ? (cand / base - 1.0) * 100 : 100.0, tol * 100);
      ++regressions_;
    } else if (base > limit_down(cand, tol) && base - cand > 1e-9) {
      std::printf("improved   %-44s %14.6g -> %14.6g (-%.1f%%)\n",
                  name.c_str(), base, cand, (1.0 - cand / base) * 100);
    }
  }

  void Missing(const std::string& name) {
    if (opts_.ignore.count(name) != 0) return;
    std::printf("REGRESSION %-44s present in baseline, missing in candidate\n",
                name.c_str());
    ++regressions_;
  }

  void Note(const std::string& name, double base, double cand) {
    std::printf("note       %-44s %14.6g -> %14.6g (zero baseline)\n",
                name.c_str(), base, cand);
  }

  size_t regressions() const { return regressions_; }

 private:
  static double limit_down(double cand, double tol) {
    return cand * (1.0 + tol);
  }

  const Options& opts_;
  size_t regressions_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--tol") == 0) {
      opts.tol = std::atof(value());
    } else if (std::strcmp(arg, "--time-tol") == 0) {
      opts.time_tol = std::atof(value());
    } else if (std::strcmp(arg, "--metric-tol") == 0) {
      const std::string spec = value();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bench_compare: --metric-tol wants NAME=FRAC\n");
        return 2;
      }
      opts.metric_tol[spec.substr(0, eq)] = std::atof(spec.c_str() + eq + 1);
    } else if (std::strcmp(arg, "--ignore") == 0) {
      opts.ignore.insert(value());
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option %s\n", arg);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline> <candidate> [--tol F] "
                 "[--time-tol F] [--metric-tol NAME=F] [--ignore NAME]\n");
    return 2;
  }

  Envelope base, cand;
  if (!LoadEnvelope(files[0], &base) || !LoadEnvelope(files[1], &cand)) {
    return 2;
  }
  if (base.bench != cand.bench) {
    std::fprintf(stderr,
                 "bench_compare: refusing to compare bench \"%s\" against "
                 "\"%s\"\n",
                 base.bench.c_str(), cand.bench.c_str());
    return 2;
  }
  if (base.config != cand.config) {
    std::fprintf(stderr,
                 "bench_compare: refusing to compare %s runs with different "
                 "configs:\n",
                 base.bench.c_str());
    for (const auto& [k, v] : base.config) {
      const auto it = cand.config.find(k);
      if (it == cand.config.end() || it->second != v) {
        std::fprintf(stderr, "  %s: baseline=%s candidate=%s\n", k.c_str(),
                     v.c_str(),
                     it == cand.config.end() ? "<absent>" : it->second.c_str());
      }
    }
    for (const auto& [k, v] : cand.config) {
      if (base.config.find(k) == base.config.end()) {
        std::fprintf(stderr, "  %s: baseline=<absent> candidate=%s\n",
                     k.c_str(), v.c_str());
      }
    }
    return 2;
  }

  std::printf("bench_compare: %s (%zu config entries, tol %.0f%%, time-tol "
              "%.0f%%)\n",
              base.bench.c_str(), base.config.size(), opts.tol * 100,
              opts.time_tol * 100);

  Comparison cmp(opts);
  for (const auto& [name, value] : base.metrics.counters) {
    const uint64_t* other = cand.metrics.FindCounter(name);
    if (other == nullptr) {
      cmp.Missing(name);
      continue;
    }
    cmp.Compare(name, static_cast<double>(value), static_cast<double>(*other),
                IsTimeMetric(name));
  }
  for (const auto& [name, value] : base.metrics.gauges) {
    const int64_t* other = cand.metrics.FindGauge(name);
    if (other == nullptr) {
      cmp.Missing(name);
      continue;
    }
    cmp.Compare(name, static_cast<double>(value), static_cast<double>(*other),
                IsTimeMetric(name));
  }
  for (const auto& [name, stats] : base.metrics.histograms) {
    const HistogramStats* other = cand.metrics.FindHistogram(name);
    if (other == nullptr) {
      cmp.Missing(name);
      continue;
    }
    cmp.Compare(name + ".count", static_cast<double>(stats.count),
                static_cast<double>(other->count), /*time_scale=*/false);
    // Means of *_ns histograms are wall time; others (sizes, fan-outs) are
    // work measures and get the tight tolerance.
    cmp.Compare(name + ".mean", stats.mean, other->mean, IsTimeMetric(name));
  }

  // Candidate-only metrics: informational.
  for (const auto& [name, value] : cand.metrics.counters) {
    if (base.metrics.FindCounter(name) == nullptr) {
      std::printf("new        %-44s %30.6g\n", name.c_str(),
                  static_cast<double>(value));
    }
  }

  if (cmp.regressions() != 0) {
    std::printf("bench_compare: %zu regression(s)\n", cmp.regressions());
    return 1;
  }
  std::printf("bench_compare: OK\n");
  return 0;
}
