// flixctl — command-line front end for FliX.
//
// Typical session:
//   # Ingest a directory of XML files (or generate a corpus) into a
//   # collection file and build + save the index:
//   flixctl build --xml-dir ./docs --collection data.flxc --index data.flix
//   flixctl build --dblp 6210 --collection data.flxc --index data.flix
//       --config maxppo --cache 256
//
//   # Inspect what was built; optionally run a sampled query workload and
//   # dump the metrics snapshot (text, or --json for the machine schema):
//   flixctl stats --collection data.flxc --index data.flix
//   flixctl stats --collection data.flxc --index data.flix --workload 100
//
//   # Queries (start elements are "docname" for a root or "docname#anchor"):
//   flixctl query   --collection data.flxc --index data.flix
//       --start vldb/pub6205 --tag article --k 10 [--exact]
//   flixctl connect --collection data.flxc --index data.flix
//       --from vldb/pub6205 --to edbt/pub0
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "check/validator.h"
#include "common/bytes.h"
#include "common/stopwatch.h"
#include "flix/adapt.h"
#include "flix/flix.h"
#include "flix/landmarks.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "ontology/ontology.h"
#include "ontology/relaxation.h"
#include "storage/format.h"
#include "storage/paged_file.h"
#include "text/text_index.h"
#include "workload/dblp_generator.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"

namespace {

using namespace flix;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.contains(name); }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  size_t GetSize(const std::string& name, size_t fallback) const {
    const auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    // Reject non-numeric values with a message instead of an uncaught
    // std::invalid_argument from stoul.
    size_t value = 0;
    for (const char c : it->second) {
      if (c < '0' || c > '9') {
        std::cerr << "--" << name << " expects a number, got '" << it->second
                  << "'\n";
        std::exit(2);
      }
      value = value * 10 + static_cast<size_t>(c - '0');
    }
    return value;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = flags.find(name);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::cerr << "--" << name << " expects a number, got '" << it->second
                << "'\n";
      std::exit(2);
    }
    return value;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  int i = 1;
  // Global boolean flags (e.g. --trace) may precede the subcommand.
  while (i < argc && std::string(argv[i]).rfind("--", 0) == 0) {
    args.flags[std::string(argv[i]).substr(2)] = "true";
    ++i;
  }
  if (i < argc) args.command = argv[i++];
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) == 0) {
      flag = flag.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[flag] = argv[++i];
      } else {
        args.flags[flag] = "true";  // boolean flag
      }
    }
  }
  return args;
}

int Usage() {
  std::cerr <<
      "usage:\n"
      "  flixctl build   --collection FILE --index FILE\n"
      "                  [--xml-dir DIR | --dblp N | --synthetic]\n"
      "                  [--config naive|maxppo|uhopi|hybrid] [--bound N]\n"
      "                  [--iss-policy auto|hopi|apex] [--cache N]\n"
      "                  [--format heap|mmap]  (mmap: paged format, loaded\n"
      "                   zero-copy; heap: compact stream format)\n"
      "  flixctl info    --index FILE  (describe a saved index file:\n"
      "                   format, options, per-segment table for paged "
      "files)\n"
      "  flixctl stats   --collection FILE --index FILE\n"
      "                  [--workload N] [--repeat N] [--json]\n"
      "                  [--watch SEC]  (redraw every SEC seconds; the\n"
      "                   workload reruns each tick)\n"
      "  flixctl profile --collection FILE --index FILE\n"
      "                  [--workload N] [--repeat N] [--top N] [--json]\n"
      "                  [--profile-file FILE] [--no-save]  (per-partition\n"
      "                   workload attribution; merges with and updates the\n"
      "                   profile persisted next to the index)\n"
      "  flixctl adapt   --collection FILE --index FILE\n"
      "                  [--dry-run | --apply] [--watch SEC]\n"
      "                  [--workload N] [--repeat N] [--top N]\n"
      "                  [--hysteresis X] [--min-queries N]\n"
      "                  [--memory-weight X] [--profile-file FILE]\n"
      "                  (workload-adaptive strategy re-selection: prints\n"
      "                   the recommendation table with projected costs;\n"
      "                   --apply migrates and re-saves the index,\n"
      "                   --watch repeats every SEC seconds)\n"
      "  flixctl trace   --chrome OUT.json\n"
      "                  [--xml-dir DIR | --dblp N | --synthetic |\n"
      "                   --collection FILE]\n"
      "                  [--config naive|maxppo|uhopi|hybrid] [--bound N]\n"
      "                  [--workload N] [--capacity N] [--slow-ms N]\n"
      "                  (in-process build + workload under the trace\n"
      "                   collector; writes a Chrome trace-event file)\n"
      "  flixctl check   --collection FILE --index FILE\n"
      "                  [--xml-dir DIR | --dblp N | --synthetic]  (build\n"
      "                   in-process instead of loading saved files)\n"
      "                  [--config naive|maxppo|uhopi|hybrid] [--bound N]\n"
      "                  [--deep] [--seed N] [--queries N] [--no-oracle]\n"
      "                  [--no-landmarks]  (--deep also validates the\n"
      "                   landmark cache against sampled BFS distances)\n"
      "  flixctl landmarks --collection FILE --index FILE\n"
      "                  [--refresh] [--count N] [--validate] [--sample N]\n"
      "                  (inspect the ALT landmark cache; --refresh\n"
      "                   rebuilds and re-saves in the file's format)\n"
      "  flixctl query   --collection FILE --index FILE --start DOC[#ID]\n"
      "                  --tag NAME [--k N] [--max-distance D] [--exact]\n"
      "                  [--legacy]  (materialize probes instead of streaming)\n"
      "  flixctl connect --collection FILE --index FILE --from DOC[#ID]\n"
      "                  --to DOC[#ID] [--max-distance D] [--no-landmarks]\n"
      "  flixctl search  --collection FILE --text \"...\" [--k N]\n"
      "  flixctl relax   --collection FILE --index FILE --query PATH\n"
      "                  [--ontology FILE] [--k N] [--no-relax]\n"
      "                  (PATH like //~movie[title~\"Matrix\"]//actor;\n"
      "                   ontology file: one 'term term similarity' per "
      "line)\n"
      "global flags:\n"
      "  --trace         log one line per query span to stderr\n";
  return 2;
}

core::MdbConfig ParseConfig(const std::string& name) {
  if (name == "naive") return core::MdbConfig::kNaive;
  if (name == "maxppo") return core::MdbConfig::kMaximalPpo;
  if (name == "uhopi") return core::MdbConfig::kUnconnectedHopi;
  return core::MdbConfig::kHybrid;
}

core::IssPolicy ParseIssPolicy(const std::string& name) {
  if (name == "hopi") return core::IssPolicy::kForceHopi;
  if (name == "apex") return core::IssPolicy::kForceApex;
  return core::IssPolicy::kAuto;
}

// Resolves "docname" or "docname#anchor" to a global element id.
StatusOr<NodeId> ResolveElement(const xml::Collection& collection,
                                const std::string& spec) {
  const size_t hash = spec.find('#');
  const std::string doc_name = spec.substr(0, hash);
  const DocId doc = collection.FindDocument(doc_name);
  if (doc == kInvalidDoc) {
    return NotFoundError("no document named '" + doc_name + "'");
  }
  if (hash == std::string::npos) return collection.GlobalId(doc, 0);
  const std::string anchor = spec.substr(hash + 1);
  const xml::ElementId elem = collection.document(doc).FindAnchor(anchor);
  if (elem == xml::kInvalidElement) {
    return NotFoundError("no anchor '" + anchor + "' in '" + doc_name + "'");
  }
  return collection.GlobalId(doc, elem);
}

StatusOr<xml::Collection> IngestXmlDir(const std::string& dir) {
  xml::Collection collection;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".xml") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    // Document name = path relative to the ingest root, without extension
    // (this is what hrefs in sibling documents are expected to use).
    std::string name =
        std::filesystem::relative(path, dir).replace_extension().string();
    if (auto added = collection.AddXml(buffer.str(), std::move(name));
        !added.ok()) {
      return Status(added.status().code(),
                    path.string() + ": " + added.status().message());
    }
  }
  if (collection.NumDocuments() == 0) {
    return InvalidArgumentError("no .xml files under '" + dir + "'");
  }
  collection.ResolveAllLinks();
  return collection;
}

StatusOr<xml::Collection> LoadCollection(const Args& args) {
  const std::string path = args.Get("collection");
  if (path.empty()) return InvalidArgumentError("--collection is required");
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  return xml::Collection::Load(in);
}

StatusOr<std::unique_ptr<core::Flix>> LoadIndex(
    const Args& args, const xml::Collection& collection) {
  const std::string path = args.Get("index");
  if (path.empty()) return InvalidArgumentError("--index is required");
  // Sniffs the format: paged files are mmapped and served zero-copy,
  // stream files are read onto the heap.
  return core::Flix::Load(path, collection);
}

int CmdBuild(const Args& args) {
  StatusOr<xml::Collection> collection =
      InvalidArgumentError("one of --xml-dir, --dblp, --synthetic required");
  if (args.Has("xml-dir")) {
    collection = IngestXmlDir(args.Get("xml-dir"));
  } else if (args.Has("dblp")) {
    workload::DblpOptions options;
    options.num_publications = args.GetSize("dblp", 6210);
    collection = workload::GenerateDblp(options);
  } else if (args.Has("synthetic")) {
    collection = workload::GenerateSynthetic({});
  }
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  std::cout << "collection: " << collection->NumDocuments() << " documents, "
            << collection->NumElements() << " elements, "
            << collection->links().links.size() << " links ("
            << collection->links().unresolved << " unresolved)\n";

  core::FlixOptions options;
  options.config = ParseConfig(args.Get("config", "hybrid"));
  options.iss_policy = ParseIssPolicy(args.Get("iss-policy", "auto"));
  options.partition_bound = args.GetSize("bound", 5000);
  options.query_cache_capacity = args.GetSize("cache", 0);
  Stopwatch watch;
  auto flix = core::Flix::Build(*collection, options);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  std::cout << "built " << core::MdbConfigName(options.config) << " in "
            << static_cast<int>(watch.ElapsedMillis()) << " ms: "
            << (*flix)->stats().num_meta_documents << " meta documents, "
            << FormatBytes((*flix)->stats().total_index_bytes)
            << " of indexes\n";

  const std::string collection_path = args.Get("collection");
  const std::string index_path = args.Get("index");
  if (collection_path.empty() || index_path.empty()) {
    std::cerr << "--collection and --index output paths are required\n";
    return 2;
  }
  {
    std::ofstream out(collection_path, std::ios::binary);
    if (Status s = collection->Save(out); !s.ok() || !out) {
      std::cerr << "saving collection failed: " << s.ToString() << "\n";
      return 1;
    }
  }
  const std::string format = args.Get("format", "heap");
  if (format != "heap" && format != "mmap") {
    std::cerr << "--format expects heap or mmap, got '" << format << "'\n";
    return 2;
  }
  if (Status s = (*flix)->Save(index_path,
                               format == "mmap"
                                   ? core::Flix::IndexFormat::kMapped
                                   : core::Flix::IndexFormat::kHeap);
      !s.ok()) {
    std::cerr << "saving index failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << collection_path << " and " << index_path << " ("
            << format << " format)\n";
  return 0;
}

// Runs `count` sampled descendant queries (each `repeat` times, so an
// enabled query cache sees re-use) through the facade, feeding the metrics
// registry. Returns the number of queries executed.
size_t RunStatsWorkload(const core::Flix& flix,
                        const xml::Collection& collection, size_t count,
                        size_t repeat) {
  const graph::Digraph graph = collection.BuildGraph();
  workload::QuerySamplerOptions sampler;
  sampler.count = count;
  const std::vector<workload::DescendantQuery> queries =
      workload::SampleDescendantQueries(collection, graph, sampler);
  size_t executed = 0;
  for (size_t r = 0; r < repeat; ++r) {
    for (const workload::DescendantQuery& q : queries) {
      flix.FindDescendantsByName(q.start, q.tag_name);
      ++executed;
    }
  }
  return executed;
}

// One stats rendering pass: optionally run the sampled workload, then
// print either the JSON snapshot or the human-readable report.
void StatsTick(const Args& args, const core::Flix& flix,
               const xml::Collection& collection) {
  size_t executed = 0;
  if (args.Has("workload")) {
    executed = RunStatsWorkload(flix, collection,
                                args.GetSize("workload", 100),
                                args.GetSize("repeat", 2));
  }
  const obs::MetricsSnapshot snapshot = flix.MetricsSnapshot();

  if (args.Has("json")) {
    std::cout << obs::ToJson(snapshot) << "\n";
    return;
  }

  const core::FlixStats& stats = flix.stats();
  std::cout << "configuration: "
            << core::MdbConfigName(flix.options().config) << "\n"
            << "documents:     " << collection.NumDocuments() << "\n"
            << "elements:      " << collection.NumElements() << "\n"
            << "links:         " << collection.links().links.size() << "\n"
            << "meta docs:     " << stats.num_meta_documents << " ("
            << stats.num_ppo << " PPO / " << stats.num_hopi << " HOPI / "
            << stats.num_apex << " APEX)\n"
            << "cross links:   " << stats.num_cross_links << "\n"
            << "index size:    " << FormatBytes(stats.total_index_bytes)
            << "\n";

  // Phase timings: Load fills build_ms with the load time; a same-process
  // Build would fill the MDB/ISS/IB breakdown (also visible as the
  // flix.build.*_ns histograms below when this process built the index).
  std::cout << "load/build:    " << stats.build_ms << " ms (mdb "
            << stats.mdb_ms << " / iss " << stats.iss_ms << " / ib "
            << stats.index_build_ms << ")\n";

  if (executed > 0) {
    std::cout << "workload:      " << executed << " queries\n";
    if (const auto* latency =
            snapshot.FindHistogram("flix.query.latency_ns")) {
      std::cout << "query latency: p50 " << latency->p50 / 1e6 << " ms, p95 "
                << latency->p95 / 1e6 << " ms, p99 " << latency->p99 / 1e6
                << " ms, max " << static_cast<double>(latency->max) / 1e6
                << " ms\n";
    }
  }
  if (const core::QueryCache* cache = flix.query_cache()) {
    const core::QueryCacheStats cs = cache->Stats();
    std::cout << "cache:         " << cs.size << "/" << cs.capacity
              << " entries, hit rate " << 100 * cs.HitRate() << "% ("
              << cs.hits << " hits / " << cs.misses << " misses / "
              << cs.evictions << " evictions)\n";
  }
  std::cout << "\n" << obs::ToText(snapshot);
}

int CmdStats(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  const size_t watch_sec = args.GetSize("watch", 0);
  for (size_t tick = 0;; ++tick) {
    if (watch_sec != 0) {
      std::cout << "--- tick " << tick << " (every " << watch_sec << "s, ^C "
                << "to stop) ---\n";
    }
    StatsTick(args, **flix, *collection);
    if (watch_sec == 0) break;
    std::cout.flush();
    std::this_thread::sleep_for(std::chrono::seconds(watch_sec));
  }
  return 0;
}

int CmdProfile(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  const size_t executed = RunStatsWorkload(**flix, *collection,
                                           args.GetSize("workload", 100),
                                           args.GetSize("repeat", 1));

  // Live snapshot first, persisted history merged *into* it: Accumulate
  // keeps the identity fields (strategy, nodes) of the side that has them
  // set first, so after an adaptive migration the table names the strategy
  // actually running, not the one recorded by an earlier process.
  obs::WorkloadProfile merged = (*flix)->Profile();
  const std::string profile_path =
      args.Get("profile-file", obs::ProfileFilePath(args.Get("index")));
  obs::WorkloadProfile persisted;
  if (obs::LoadProfileFile(profile_path, &persisted)) {
    merged.Merge(persisted);
  }
  if (!args.Has("no-save")) {
    if (!obs::SaveProfileFile(profile_path, merged)) {
      std::cerr << "warning: could not write " << profile_path << "\n";
    }
  }

  if (args.Has("json")) {
    std::cout << obs::ProfileToJson(merged) << "\n";
    return 0;
  }
  std::cout << "workload: " << executed << " queries this run; profile at "
            << profile_path << "\n\n";
  std::cout << obs::ProfileToText(merged, args.GetSize("top", 0));
  return 0;
}

// `flixctl adapt`: workload-adaptive strategy re-selection (src/flix/adapt.h).
// Default is a dry run — print the recommendation table with projected
// costs and touch nothing. --apply migrates the recommended partitions
// (validated swaps) and re-saves the index; --watch SEC repeats the loop.
int CmdAdapt(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  const bool apply = args.Has("apply");
  if (apply && args.Has("dry-run")) {
    std::cerr << "--apply and --dry-run are mutually exclusive\n";
    return 2;
  }

  core::AdaptOptions options;
  options.hysteresis = args.GetDouble("hysteresis", options.hysteresis);
  options.min_queries = args.GetSize("min-queries", options.min_queries);
  options.memory_weight =
      args.GetDouble("memory-weight", options.memory_weight);
  const core::CostModel model = core::CostModel::Measured();
  const std::string profile_path =
      args.Get("profile-file", obs::ProfileFilePath(args.Get("index")));

  if (apply) (*flix)->SetAdaptiveIss(true);
  core::StrategyMigrator migrator(**flix, model, options);

  const size_t watch_sec = args.GetSize("watch", 0);
  for (size_t tick = 0;; ++tick) {
    if (watch_sec != 0) {
      std::cout << "--- tick " << tick << " (every " << watch_sec << "s, ^C "
                << "to stop) ---\n";
    }
    if (args.Has("workload")) {
      RunStatsWorkload(**flix, *collection, args.GetSize("workload", 100),
                       args.GetSize("repeat", 1));
    }
    // Live observations first, persisted history merged in — same identity
    // rule as CmdProfile: the table names the strategy currently running.
    obs::WorkloadProfile profile = (*flix)->Profile();
    obs::WorkloadProfile persisted;
    if (obs::LoadProfileFile(profile_path, &persisted)) {
      profile.Merge(persisted);
    }
    const std::vector<core::Recommendation> recs =
        core::RecommendStrategies(**flix, profile, model, options);
    std::cout << core::RecommendationsToText(recs, args.GetSize("top", 0));

    if (apply) {
      size_t migrated = 0;
      for (const core::Recommendation& rec : recs) {
        if (!rec.migrate) continue;
        if (Status status = migrator.Migrate(rec); status.ok()) {
          std::cout << "migrated partition " << rec.partition << ": "
                    << index::StrategyName(rec.current) << " -> "
                    << index::StrategyName(rec.best) << "\n";
          ++migrated;
        } else {
          std::cout << "migration of partition " << rec.partition
                    << " FAILED (old index stays live): "
                    << status.ToString() << "\n";
        }
      }
      if (migrated > 0) {
        // Keep the file's format: a paged index stays paged.
        const core::Flix::IndexFormat format =
            storage::PagedFileReader::SniffPagedFile(args.Get("index"))
                ? core::Flix::IndexFormat::kMapped
                : core::Flix::IndexFormat::kHeap;
        if (Status status = (*flix)->Save(args.Get("index"), format);
            !status.ok()) {
          std::cerr << "re-saving index failed: " << status.ToString() << "\n";
          return 1;
        }
        std::cout << "re-saved " << args.Get("index") << " after " << migrated
                  << " migration(s)\n";
      } else {
        std::cout << "nothing to migrate\n";
      }
    }
    if (watch_sec == 0) break;
    std::cout.flush();
    std::this_thread::sleep_for(std::chrono::seconds(watch_sec));
  }
  return 0;
}

int CmdTrace(const Args& args) {
  const std::string out_path = args.Get("chrome");
  if (out_path.empty() || out_path == "true") {
    std::cerr << "--chrome OUT.json is required\n";
    return 2;
  }

  StatusOr<xml::Collection> collection =
      InvalidArgumentError("one of --xml-dir/--dblp/--synthetic/--collection "
                           "is required");
  if (args.Has("xml-dir")) {
    collection = IngestXmlDir(args.Get("xml-dir"));
  } else if (args.Has("dblp")) {
    workload::DblpOptions options;
    options.num_publications = args.GetSize("dblp", 500);
    collection = workload::GenerateDblp(options);
  } else if (args.Has("synthetic")) {
    collection = workload::GenerateSynthetic({});
  } else if (args.Has("collection")) {
    collection = LoadCollection(args);
  }
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }

  obs::TraceCollector::Global().Enable(args.GetSize("capacity", 65536));
  if (args.Has("slow-ms")) {
    obs::SlowQueryLog::Global().Configure(args.GetSize("slow-ms", 0) *
                                          1000000ull);
  }

  // Build in-process so the MDB -> ISS -> IB spans are part of the timeline,
  // then run the sampled workload for the query-side spans.
  core::FlixOptions options;
  options.config = ParseConfig(args.Get("config", "hybrid"));
  options.partition_bound = args.GetSize("bound", 5000);
  auto flix = core::Flix::Build(*collection, options);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  RunStatsWorkload(**flix, *collection, args.GetSize("workload", 25),
                   args.GetSize("repeat", 1));

  auto& collector = obs::TraceCollector::Global();
  const std::vector<obs::TraceEvent> events = collector.Events();
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  out << obs::ToChromeTraceJson(events);
  if (!out) {
    std::cerr << "writing '" << out_path << "' failed\n";
    return 1;
  }
  std::cout << "wrote " << events.size() << " spans to " << out_path;
  if (collector.Dropped() > 0) {
    std::cout << " (" << collector.Dropped()
              << " dropped; raise --capacity to keep them)";
  }
  std::cout << "\n";
  for (const obs::SlowQueryRecord& slow :
       obs::SlowQueryLog::Global().Entries()) {
    std::cout << "slow query #" << slow.seq << " ("
              << static_cast<double>(slow.dur_ns) / 1e6 << " ms): "
              << slow.description << "\n";
  }
  collector.Disable();
  return 0;
}

// `flixctl check`: run the framework validator and the differential query
// oracle against a saved collection + index (or an in-process build when
// --xml-dir/--dblp/--synthetic is given). Exits 1 on any violation.
int CmdCheck(const Args& args) {
  StatusOr<xml::Collection> collection =
      InvalidArgumentError("--collection (or --xml-dir/--dblp/--synthetic) "
                           "is required");
  const bool in_process =
      args.Has("xml-dir") || args.Has("dblp") || args.Has("synthetic");
  if (args.Has("xml-dir")) {
    collection = IngestXmlDir(args.Get("xml-dir"));
  } else if (args.Has("dblp")) {
    workload::DblpOptions options;
    options.num_publications = args.GetSize("dblp", 6210);
    collection = workload::GenerateDblp(options);
  } else if (args.Has("synthetic")) {
    collection = workload::GenerateSynthetic({});
  } else {
    collection = LoadCollection(args);
  }
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  StatusOr<std::unique_ptr<core::Flix>> flix =
      InvalidArgumentError("unreachable");
  if (in_process) {
    core::FlixOptions options;
    options.config = ParseConfig(args.Get("config", "hybrid"));
    options.partition_bound = args.GetSize("bound", 5000);
    flix = core::Flix::Build(*collection, options);
  } else {
    flix = LoadIndex(args, *collection);
  }
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }

  if (args.Has("no-landmarks")) (*flix)->SetLandmarksEnabled(false);
  check::CheckOptions check_options;
  check_options.index.deep = args.Has("deep");
  check_options.index.seed = args.GetSize("seed", check_options.index.seed);
  Stopwatch watch;
  const check::CheckReport report =
      check::ValidateFramework(**flix, check_options);
  std::cout << "validator: " << report.checks_run << " checks, "
            << report.violations.size() << " violations ("
            << static_cast<int>(watch.ElapsedMillis()) << " ms)\n";
  for (const std::string& violation : report.violations) {
    std::cout << "  VIOLATION: " << violation << "\n";
  }

  bool oracle_ok = true;
  if (!args.Has("no-oracle")) {
    check::OracleOptions oracle_options;
    oracle_options.deep = args.Has("deep");
    oracle_options.seed = args.GetSize("seed", oracle_options.seed);
    oracle_options.num_queries =
        args.GetSize("queries", oracle_options.num_queries);
    watch.Restart();
    const check::OracleReport oracle =
        check::RunDifferentialOracle(**flix, oracle_options);
    std::cout << "oracle:    " << oracle.queries_diffed
              << " queries diffed, " << oracle.diffs.size() << " diffs ("
              << static_cast<int>(watch.ElapsedMillis()) << " ms)\n";
    for (const std::string& diff : oracle.diffs) {
      std::cout << "  DIFF: " << diff << "\n";
    }
    oracle_ok = oracle.ok();
  }

  if (report.ok() && oracle_ok) {
    std::cout << "check passed\n";
    return 0;
  }
  std::cout << "check FAILED\n";
  return 1;
}

// `flixctl info`: describe a saved index file without needing the
// collection. Paged files get the full superblock + segment table; stream
// files just their identity line.
int CmdInfo(const Args& args) {
  const std::string path = args.Get("index");
  if (path.empty()) {
    std::cerr << "--index is required\n";
    return 2;
  }
  if (!storage::PagedFileReader::SniffPagedFile(path)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    uint32_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!in || magic != 0x464C4958) {
      std::cerr << path << ": not a FliX index file\n";
      return 1;
    }
    std::cout << path << ": stream (heap) format\n"
              << "  size: " << FormatBytes(std::filesystem::file_size(path))
              << "\n"
              << "  load: full copy onto the heap; re-save with\n"
              << "        'flixctl build --format mmap' for zero-copy "
                 "loads\n";
    return 0;
  }

  auto reader = storage::PagedFileReader::Open(path, /*verify_checksums=*/true);
  if (!reader.ok()) {
    std::cerr << path << ": " << reader.status().ToString() << "\n";
    return 1;
  }
  const storage::Superblock& sb = reader->superblock();
  std::cout << path << ": paged (mmap) format v" << sb.version << "\n"
            << "  size: " << FormatBytes(sb.file_bytes) << " in "
            << sb.segment_count << " segments (" << sb.page_bytes
            << "-byte pages, checksums verified)\n"
            << "  collection: " << sb.num_elements << " elements\n"
            << "  config: " << core::MdbConfigName(
                   static_cast<core::MdbConfig>(sb.config))
            << ", " << sb.num_partitions << " partitions, "
            << sb.num_cross_links << " cross links\n"
            << "  options: bound=" << sb.partition_bound
            << " hopi_max_nodes=" << sb.hopi_max_nodes
            << " cache=" << sb.query_cache_capacity << "\n";
  if (sb.landmark_count_plus_one > 1 && sb.landmark_generation > 0) {
    std::cout << "  landmarks: " << (sb.landmark_count_plus_one - 1)
              << " configured, generation " << sb.landmark_generation
              << " on disk (compare with the live generation from\n"
              << "             'flixctl landmarks' to gauge staleness)\n";
  } else {
    // Legacy pre-landmark file (0), explicitly disabled (1), or configured
    // but never built — point queries run blind either way.
    std::cout << "  landmarks: none (point queries run blind; build with "
                 "'flixctl landmarks --refresh')\n";
  }
  std::cout << "  segments:\n";
  for (const storage::SegmentEntry& entry : reader->segments()) {
    std::cout << "    ";
    switch (static_cast<storage::SegmentKind>(entry.kind)) {
      case storage::SegmentKind::kFramework:
        std::cout << "framework        ";
        break;
      case storage::SegmentKind::kPartition:
        std::cout << "partition " << entry.partition << "\t";
        break;
      case storage::SegmentKind::kIndex:
        std::cout << "index " << entry.partition << " ["
                  << index::StrategyName(
                         static_cast<index::StrategyKind>(entry.strategy))
                  << "]\t";
        break;
      case storage::SegmentKind::kLandmarks:
        std::cout << "landmarks        ";
        break;
      default:
        std::cout << "unknown kind " << entry.kind << "\t";
        break;
    }
    std::cout << FormatBytes(entry.length) << " @ " << entry.offset << "\n";
  }
  return 0;
}

// `flixctl landmarks`: inspect or rebuild the ALT landmark cache that
// accelerates point queries (flix/landmarks.h). Default prints the live
// cache; --refresh rebuilds and re-saves the index in its current format,
// --count N changes the landmark budget for that rebuild.
int CmdLandmarks(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  if (args.Has("count")) {
    (*flix)->SetLandmarkCount(args.GetSize("count", 16));
  }
  if (args.Has("refresh") || args.Has("count")) {
    Stopwatch watch;
    const size_t stale = (*flix)->RebuildLandmarks();
    std::cout << "rebuilt landmark cache in "
              << static_cast<int>(watch.ElapsedMillis()) << " ms (" << stale
              << " in-flight queries finished on the displaced cache)\n";
    // Keep the file's format: a paged index stays paged (same rule as
    // `flixctl adapt --apply`).
    const core::Flix::IndexFormat format =
        storage::PagedFileReader::SniffPagedFile(args.Get("index"))
            ? core::Flix::IndexFormat::kMapped
            : core::Flix::IndexFormat::kHeap;
    if (Status status = (*flix)->Save(args.Get("index"), format);
        !status.ok()) {
      std::cerr << "re-saving index failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "re-saved " << args.Get("index") << "\n";
  }

  const std::shared_ptr<const core::LandmarkCache> cache =
      (*flix)->meta_documents().landmarks.Snapshot();
  if (cache == nullptr || cache->empty()) {
    std::cout << "no landmark cache: point queries run blind\n"
              << "build one with: flixctl landmarks --collection ... "
                 "--index ... --refresh [--count N]\n";
    return 0;
  }
  std::cout << "landmarks: " << cache->num_landmarks() << " over "
            << cache->num_nodes() << " elements, generation "
            << cache->generation() << ", " << FormatBytes(cache->MemoryBytes())
            << "\n";
  const core::MetaDocumentSet& set = (*flix)->meta_documents();
  for (const NodeId l : cache->landmarks()) {
    const auto loc = collection->Locate(l);
    std::cout << "  " << collection->document(loc.doc).name() << "#"
              << loc.elem << "  (partition " << set.meta_of_node[l] << ")\n";
  }
  if (args.Has("validate")) {
    Stopwatch watch;
    const Status status =
        cache->Validate(collection->BuildGraph(),
                        args.GetSize("sample", 64), args.GetSize("seed", 1));
    if (status.ok()) {
      std::cout << "validate: distances agree with BFS ("
                << static_cast<int>(watch.ElapsedMillis()) << " ms)\n";
    } else {
      std::cout << "validate FAILED: " << status.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

int CmdQuery(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  const auto start = ResolveElement(*collection, args.Get("start"));
  if (!start.ok()) {
    std::cerr << start.status().ToString() << "\n";
    return 1;
  }
  const std::string tag = args.Get("tag");
  if (tag.empty()) {
    std::cerr << "--tag is required\n";
    return 2;
  }
  core::QueryOptions options;
  options.max_results =
      static_cast<int64_t>(args.GetSize("k", static_cast<size_t>(-1)));
  if (args.Has("max-distance")) {
    options.max_distance =
        static_cast<Distance>(args.GetSize("max-distance", 0));
  }
  options.exact = args.Has("exact");
  options.materialize = args.Has("legacy");

  Stopwatch watch;
  size_t count = 0;
  double first_ms = 0.0;
  (*flix)->FindDescendantsByName(*start, tag, options,
                                 [&](const core::Result& r) {
                                   if (count == 0) {
                                     first_ms = watch.ElapsedMillis();
                                   }
                                   const auto loc = collection->Locate(r.node);
                                   std::cout
                                       << "  "
                                       << collection->document(loc.doc).name()
                                       << "#" << loc.elem << "  distance "
                                       << r.distance << "\n";
                                   ++count;
                                   return true;
                                 });
  std::cout << count << " results in " << watch.ElapsedMillis() << " ms";
  if (count > 0) std::cout << " (first after " << first_ms << " ms)";
  std::cout << "\n";
  return 0;
}

int CmdConnect(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  const auto from = ResolveElement(*collection, args.Get("from"));
  const auto to = ResolveElement(*collection, args.Get("to"));
  if (!from.ok() || !to.ok()) {
    std::cerr << (from.ok() ? to.status() : from.status()).ToString() << "\n";
    return 1;
  }
  Distance max_distance = -1;
  if (args.Has("max-distance")) {
    max_distance = static_cast<Distance>(args.GetSize("max-distance", 0));
  }
  // Differential escape hatch: compare guided vs blind answers in place.
  if (args.Has("no-landmarks")) (*flix)->SetLandmarksEnabled(false);
  const Distance d = (*flix)->FindDistance(*from, *to, max_distance);
  if (d == kUnreachable) {
    std::cout << "not connected\n";
  } else {
    std::cout << "connected, distance " << d << "\n";
  }
  return 0;
}

int CmdSearch(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  const std::string query = args.Get("text");
  if (query.empty()) {
    std::cerr << "--text is required\n";
    return 2;
  }
  Stopwatch build_watch;
  const text::TextIndex index = text::TextIndex::Build(*collection);
  std::cout << "text index: " << index.NumTerms() << " terms over "
            << index.NumIndexedElements() << " elements ("
            << static_cast<int>(build_watch.ElapsedMillis()) << " ms)\n";
  const size_t k = args.GetSize("k", 10);
  for (const auto& hit : index.Search(query, k)) {
    const auto loc = collection->Locate(hit.element);
    const auto& doc = collection->document(loc.doc);
    std::cout << "  " << hit.score << "  " << doc.name() << "#" << loc.elem
              << " <" << collection->pool().Name(doc.element(loc.elem).tag)
              << ">  \"" << doc.element(loc.elem).text << "\"\n";
  }
  return 0;
}

int CmdRelax(const Args& args) {
  auto collection = LoadCollection(args);
  if (!collection.ok()) {
    std::cerr << collection.status().ToString() << "\n";
    return 1;
  }
  auto flix = LoadIndex(args, *collection);
  if (!flix.ok()) {
    std::cerr << flix.status().ToString() << "\n";
    return 1;
  }
  auto query = ontology::ParsePathQuery(args.Get("query"));
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  // Optional ontology: one "term term similarity" triple per line;
  // '#'-prefixed lines are comments.
  ontology::Ontology onto;
  if (args.Has("ontology")) {
    std::ifstream in(args.Get("ontology"));
    if (!in) {
      std::cerr << "cannot open ontology '" << args.Get("ontology") << "'\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::stringstream fields(line);
      std::string a;
      std::string b;
      double sim = 0;
      if (fields >> a >> b >> sim) {
        onto.AddSimilarity(a, b, sim);
      } else {
        std::cerr << "skipping malformed ontology line: " << line << "\n";
      }
    }
  }

  const text::TextIndex text_index = text::TextIndex::Build(*collection);
  ontology::RelaxedQueryOptions ropts;
  ropts.text_index = &text_index;

  const ontology::PathQuery effective =
      args.Has("no-relax") ? *query : ontology::Relax(*query);
  Stopwatch watch;
  const auto matches =
      ontology::EvaluatePathQuery(**flix, onto, effective, ropts);
  const size_t k = args.GetSize("k", 10);
  size_t shown = 0;
  for (const auto& m : matches) {
    if (++shown > k) break;
    const auto loc = collection->Locate(m.node);
    const auto& doc = collection->document(loc.doc);
    std::cout << "  score " << m.score << "  path length " << m.path_length
              << "  " << doc.name() << "#" << loc.elem << " <"
              << collection->pool().Name(doc.element(loc.elem).tag) << ">\n";
  }
  std::cout << matches.size() << " matches in " << watch.ElapsedMillis()
            << " ms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.Has("trace")) flix::obs::SetTraceLog(&std::cerr);
  if (args.command == "build") return CmdBuild(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "profile") return CmdProfile(args);
  if (args.command == "adapt") return CmdAdapt(args);
  if (args.command == "trace") return CmdTrace(args);
  if (args.command == "check") return CmdCheck(args);
  if (args.command == "info") return CmdInfo(args);
  if (args.command == "landmarks") return CmdLandmarks(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "connect") return CmdConnect(args);
  if (args.command == "search") return CmdSearch(args);
  if (args.command == "relax") return CmdRelax(args);
  return Usage();
}
