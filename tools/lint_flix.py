#!/usr/bin/env python3
"""FliX project-invariant linter (DESIGN.md section 8, "Locking discipline").

Three rules, each guarding an invariant the compiler cannot see on its own:

1. sync-primitives — raw ``std::mutex`` / ``std::lock_guard`` /
   ``std::unique_lock`` / ``std::scoped_lock`` / ``std::shared_mutex`` /
   ``std::condition_variable`` / ``std::atomic_flag`` are banned everywhere
   under src/ except common/sync.h itself. Everything locks through the
   annotated flix::Mutex/SpinLock wrappers, so Clang's Thread Safety
   Analysis sees every acquisition.

2. tsa-optout — every ``NO_THREAD_SAFETY_ANALYSIS`` use must carry a
   ``// SAFETY:`` justification within the six lines above it (or on the
   same line). The escape hatch is allowed; an *unexplained* escape hatch
   is not. The macro definition itself (common/sync.h) is exempt.

3. metric-names — every ``"flix.*"`` string literal in src/ and tools/
   must be declared in the central registry header src/obs/names.h. The
   metrics registry interns by name, so a typo silently creates a parallel
   metric; the registry makes names greppable and the linter keeps them
   closed under declaration.

Stdlib-only on purpose: runs anywhere python3 exists, including the
docs-lint CI job (.github/workflows/ci.yml).

    $ python3 tools/lint_flix.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
NAMES_HEADER = REPO / "src" / "obs" / "names.h"
SYNC_HEADER = REPO / "src" / "common" / "sync.h"

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

RAW_PRIMITIVES = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?|atomic_flag)\b"
)
TSA_OPTOUT = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
SAFETY_COMMENT = re.compile(r"//\s*SAFETY:")
METRIC_LITERAL = re.compile(r'"(flix\.[A-Za-z0-9_.]*)"')


def cxx_files(root):
    return sorted(
        p for p in root.rglob("*") if p.suffix in CXX_SUFFIXES and p.is_file()
    )


def strip_comments_and_strings(line):
    """Removes // comments and string literal *contents* from one line, so
    a primitive named in prose or in an error message is not flagged."""
    out = []
    i = 0
    in_string = None
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in "\"'":
            in_string = c
            i += 1
            continue
        if c == "/" and line[i : i + 2] == "//":
            break
        out.append(c)
        i += 1
    return "".join(out)


def declared_metric_names():
    names = set(METRIC_LITERAL.findall(NAMES_HEADER.read_text(encoding="utf-8")))
    if not names:
        print(f"lint_flix: no flix.* names found in {NAMES_HEADER}")
    return names


def check_sync_primitives(path, lines, report):
    if path.resolve() == SYNC_HEADER:
        return
    for lineno, line in enumerate(lines, start=1):
        code = strip_comments_and_strings(line)
        match = RAW_PRIMITIVES.search(code)
        if match:
            report(
                path,
                lineno,
                f"raw {match.group(0)} — use the annotated wrappers in "
                "common/sync.h (flix::Mutex, MutexLock, CondVar, ...)",
            )


def check_tsa_optouts(path, lines, report):
    if path.resolve() == SYNC_HEADER:  # the macro's definition site
        return
    for lineno, line in enumerate(lines, start=1):
        if not TSA_OPTOUT.search(strip_comments_and_strings(line)):
            continue
        context = lines[max(0, lineno - 7) : lineno]
        if not any(SAFETY_COMMENT.search(prev) for prev in context):
            report(
                path,
                lineno,
                "NO_THREAD_SAFETY_ANALYSIS without a '// SAFETY:' "
                "justification in the preceding 6 lines",
            )


def check_metric_names(path, lines, declared, report):
    if path.resolve() == NAMES_HEADER.resolve():
        return
    for lineno, line in enumerate(lines, start=1):
        for name in METRIC_LITERAL.findall(line):
            # The bare prefix appears in exporter filters and help text.
            if name in declared or name == "flix.":
                continue
            report(
                path,
                lineno,
                f"metric name \"{name}\" is not declared in src/obs/names.h "
                "— add it to the registry (and prefer the named constant)",
            )


def main():
    failures = 0

    def report(path, lineno, message):
        nonlocal failures
        failures += 1
        print(f"{path.relative_to(REPO)}:{lineno}: {message}")

    declared = declared_metric_names()
    src_files = cxx_files(REPO / "src")
    tools_files = cxx_files(REPO / "tools")

    for path in src_files:
        lines = path.read_text(encoding="utf-8").splitlines()
        check_sync_primitives(path, lines, report)
        check_tsa_optouts(path, lines, report)
        check_metric_names(path, lines, declared, report)
    for path in tools_files:
        lines = path.read_text(encoding="utf-8").splitlines()
        check_tsa_optouts(path, lines, report)
        check_metric_names(path, lines, declared, report)

    print(
        f"lint_flix: {len(src_files) + len(tools_files)} files scanned, "
        f"{failures} violation(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
