#!/usr/bin/env python3
"""Checks that every relative link in the repo's markdown files resolves.

Scans *.md at the repo root and everything under docs/, extracts inline
links and images (``[text](target)``), and fails if a target that points
inside the repository does not exist. External schemes (http/https/mailto),
pure anchors (``#section``) and bare URLs are skipped; ``target#anchor``
is checked for the file part only.

Stdlib-only on purpose: runs anywhere python3 exists, including the
docs-lint CI job (.github/workflows/ci.yml).

    $ python3 tools/check_markdown_links.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) and ![alt](target); target may carry an optional "title".
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files():
    files = sorted(REPO.glob("*.md"))
    docs = REPO / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def strip_code(text):
    """Drops fenced and inline code spans so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path):
    broken = []
    for target in LINK_RE.findall(strip_code(path.read_text(encoding="utf-8"))):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if REPO not in resolved.parents and resolved != REPO:
            broken.append((target, "points outside the repository"))
        elif not resolved.exists():
            broken.append((target, "does not exist"))
    return broken


def main():
    files = markdown_files()
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for target, why in check_file(path):
            print(f"{path.relative_to(REPO)}: broken link '{target}' ({why})")
            failures += 1
    print(
        f"check_markdown_links: {len(files)} files scanned, "
        f"{failures} broken link(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
