// Ablation: the price of exact results (Section 7's "returning results
// exactly sorted instead of approximately"). Compares, per configuration,
// approximate streaming vs exact mode on the same queries: first-result
// latency, total time, and the ordering error the exact mode eliminates.
//
//   $ ./bench_exact_vs_approx [--pubs 2000]
#include "bench/bench_util.h"

#include <vector>

#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 2000);

  std::printf("=== Exact vs. approximate evaluation ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  const graph::Digraph g = collection.BuildGraph();
  std::printf("corpus: %zu documents, %zu elements\n\n",
              collection.NumDocuments(), collection.NumElements());

  workload::QuerySamplerOptions sampler;
  sampler.seed = 31;
  sampler.count = 10;
  sampler.min_results = 10;
  const auto queries =
      workload::SampleDescendantQueries(collection, g, sampler);
  std::printf("%zu queries\n\n", queries.size());

  std::printf("%-12s | %12s %12s %8s | %12s %12s %8s\n", "",
              "approx first", "approx all", "error", "exact first",
              "exact all", "error");
  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);

    double first_ms[2] = {0, 0};
    double all_ms[2] = {0, 0};
    double error[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      for (const auto& q : queries) {
        core::QueryOptions options;
        options.exact = mode == 1;
        Stopwatch watch;
        double first = 0;
        std::vector<core::Result> results;
        flix->pee().FindDescendantsByTag(q.start, q.tag, options,
                                         [&](const core::Result& r) {
                                           if (results.empty()) {
                                             first = watch.ElapsedMillis();
                                           }
                                           results.push_back(r);
                                           return true;
                                         });
        first_ms[mode] += first;
        all_ms[mode] += watch.ElapsedMillis();
        error[mode] += workload::OrderErrorRate(results);
      }
    }
    const double n = queries.empty() ? 1.0 : queries.size();
    std::printf("%-12s | %12.3f %12.3f %7.1f%% | %12.3f %12.3f %7.1f%%\n",
                setup.label.c_str(), first_ms[0] / n, all_ms[0] / n,
                100 * error[0] / n, first_ms[1] / n, all_ms[1] / n,
                100 * error[1] / n);
  }

  std::printf(
      "\nexpected: exact mode always reports 0%% ordering error; its first "
      "result arrives only after the full traversal (no streaming head "
      "start), and disabling entry-point domination makes cyclic regions "
      "cost more — the approximation is what buys the early results the "
      "paper's top-k scenario wants.\n");
  bench::EmitMetricsBlock("exact_vs_approx");
  return 0;
}
