// Measures the per-strategy calibration constants the workload-adaptive ISS
// consumes (src/flix/adapt.h): per-probe cost, per-cursor-pull cost, index
// bytes per node, and build nanoseconds per node — for PPO, HOPI and APEX.
//
// PPO is measured on a random forest (the only shape it indexes); HOPI and
// APEX on the same forest densified with random cross edges, the shape they
// actually serve inside FliX. Absolute numbers vary with the machine; the
// adaptive cost model only relies on the *ratios* between strategies, which
// are hardware-stable unless an architecture inverts one (e.g. an APEX
// pruned-BFS probe becoming cheaper than a HOPI label join).
//
//   $ ./bench_strategy_costs [--nodes N] [--repeats R] [--probes P]
//
// Prints one table row per strategy, a paste-ready CostModel::Measured()
// snippet, and the standard BENCH_strategy_costs.json envelope with the
// constants as gauges.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "graph/digraph.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/path_index.h"
#include "index/ppo.h"

namespace {

using namespace flix;

graph::Digraph RandomForest(size_t n, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(8)));
  }
  for (NodeId i = 1; i < n; ++i) {
    // Half the attachments go to a recent node: XML-like depth instead of
    // the shallow star shape uniform attachment converges to.
    const NodeId parent =
        rng.Uniform(2) == 0
            ? static_cast<NodeId>(rng.Uniform(i))
            : static_cast<NodeId>(i - 1 - rng.Uniform(std::min<NodeId>(i, 16)));
    g.AddEdge(parent, i);
  }
  return g;
}

// The forest plus ~n/8 extra forward edges: connected, cycle-free-ish DAG
// shape comparable to a densely linked meta document.
graph::Digraph RandomLinkedDag(size_t n, uint64_t seed) {
  graph::Digraph g = RandomForest(n, seed);
  Rng rng(seed + 1);
  for (size_t i = 0; i < n / 8; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n - 1));
    const NodeId v =
        static_cast<NodeId>(u + 1 + rng.Uniform(n - u - 1));  // forward: u < v
    g.AddEdge(u, v);
  }
  return g;
}

struct MeasuredCosts {
  double probe_ns = 0;
  double pull_ns = 0;
  double bytes_per_node = 0;
  double build_ns_per_node = 0;
};

template <typename BuildFn>
MeasuredCosts Measure(const graph::Digraph& g, BuildFn build, size_t repeats,
                      size_t probes, uint64_t seed) {
  const size_t n = g.NumNodes();
  MeasuredCosts costs;

  // Build cost: best of `repeats` full builds (min filters scheduler noise).
  uint64_t best_build_ns = ~0ull;
  std::unique_ptr<index::PathIndex> index;
  for (size_t r = 0; r < repeats; ++r) {
    Stopwatch watch;
    index = build(g);
    const uint64_t ns = watch.ElapsedNanos();
    if (ns < best_build_ns) best_build_ns = ns;
  }
  costs.build_ns_per_node =
      static_cast<double>(best_build_ns) / static_cast<double>(n);
  costs.bytes_per_node =
      static_cast<double>(index->MemoryBytes()) / static_cast<double>(n);

  // Probe cost: half random pairs (mostly unreachable — the PEE's
  // duplicate-elimination checks), half pairs with `to` sampled from the
  // source's actual descendant set (the point queries that make APEX pay
  // for its pruned BFS). Each pair is probed with IsReachable *and*
  // DistanceBetween, the two point probes the PEE issues.
  {
    Rng rng(seed);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(probes);
    while (pairs.size() < probes) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      if (pairs.size() % 2 == 0) {
        pairs.emplace_back(u, static_cast<NodeId>(rng.Uniform(n)));
        continue;
      }
      const std::vector<index::NodeDist> down = index->Descendants(u);
      if (down.empty()) continue;
      pairs.emplace_back(u, down[rng.Uniform(down.size())].node);
    }
    size_t reachable = 0;
    Stopwatch watch;
    for (const auto& [u, v] : pairs) {
      reachable += index->IsReachable(u, v) ? 1 : 0;
      reachable += index->DistanceBetween(u, v) != kUnreachable ? 1 : 0;
    }
    costs.probe_ns = static_cast<double>(watch.ElapsedNanos()) /
                     static_cast<double>(2 * probes);
    std::printf("    (%zu/%zu probes reachable)\n", reachable, 2 * probes);
  }

  // Pull cost: drain tag-filtered descendant cursors from random sources —
  // the cursor shape the PEE actually opens per entry point.
  {
    Rng rng(seed + 1);
    uint64_t pulls = 0;
    uint64_t total_ns = 0;
    for (size_t i = 0; i < 256; ++i) {
      const NodeId source = static_cast<NodeId>(rng.Uniform(n));
      const TagId tag = static_cast<TagId>(rng.Uniform(8));
      Stopwatch watch;
      auto cursor = index->DescendantsByTagCursor(source, tag);
      while (cursor->Next().has_value()) ++pulls;
      total_ns += watch.ElapsedNanos();
    }
    costs.pull_ns = pulls == 0 ? 0
                               : static_cast<double>(total_ns) /
                                     static_cast<double>(pulls);
  }
  return costs;
}

void SetGauges(const char* strategy, const MeasuredCosts& costs) {
  auto& reg = obs::MetricsRegistry::Global();
  const std::string prefix = std::string("bench.cost.") + strategy + ".";
  reg.GetGauge(prefix + "probe_ns").Set(static_cast<int64_t>(costs.probe_ns));
  reg.GetGauge(prefix + "pull_ns").Set(static_cast<int64_t>(costs.pull_ns));
  reg.GetGauge(prefix + "bytes_per_node")
      .Set(static_cast<int64_t>(costs.bytes_per_node));
  reg.GetGauge(prefix + "build_ns_per_node")
      .Set(static_cast<int64_t>(costs.build_ns_per_node));
}

void PrintRow(const char* strategy, const MeasuredCosts& costs) {
  std::printf("  %-6s  %10.1f  %10.1f  %12.1f  %16.1f\n", strategy,
              costs.probe_ns, costs.pull_ns, costs.bytes_per_node,
              costs.build_ns_per_node);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t nodes = bench::FlagOr(argc, argv, "--nodes", 20000);
  const size_t repeats = bench::FlagOr(argc, argv, "--repeats", 3);
  const size_t probes = bench::FlagOr(argc, argv, "--probes", 20000);

  std::printf("strategy cost calibration: %zu nodes, best of %zu builds, "
              "%zu probes\n\n",
              nodes, repeats, probes);

  const graph::Digraph forest = RandomForest(nodes, 7);
  const graph::Digraph dag = RandomLinkedDag(nodes, 7);

  std::printf("  PPO on a random forest; HOPI/APEX on the forest + %zu "
              "cross edges\n",
              nodes / 8);
  const MeasuredCosts ppo = Measure(
      forest,
      [](const graph::Digraph& g) -> std::unique_ptr<index::PathIndex> {
        auto built = index::PpoIndex::Build(g);
        if (!built.ok()) {
          std::fprintf(stderr, "PPO build failed: %s\n",
                       built.status().ToString().c_str());
          std::exit(1);
        }
        return std::move(built).value();
      },
      repeats, probes, 11);
  const MeasuredCosts hopi = Measure(
      dag,
      [](const graph::Digraph& g) -> std::unique_ptr<index::PathIndex> {
        return index::HopiIndex::Build(g);
      },
      repeats, probes, 12);
  const MeasuredCosts apex = Measure(
      dag,
      [](const graph::Digraph& g) -> std::unique_ptr<index::PathIndex> {
        return index::ApexIndex::Build(g);
      },
      repeats, probes, 13);

  std::printf("\n  %-6s  %10s  %10s  %12s  %16s\n", "", "probe_ns", "pull_ns",
              "bytes_per_node", "build_ns_per_node");
  PrintRow("ppo", ppo);
  PrintRow("hopi", hopi);
  PrintRow("apex", apex);

  std::printf("\npaste into CostModel::Measured() (src/flix/adapt.cc):\n");
  const auto snippet = [](const char* name, const MeasuredCosts& c) {
    std::printf("  model.%s = {/*probe_ns=*/%.0f, /*pull_ns=*/%.0f, "
                "/*bytes_per_node=*/%.0f,\n"
                "              /*build_ns_per_node=*/%.0f};\n",
                name, c.probe_ns, c.pull_ns, c.bytes_per_node,
                c.build_ns_per_node);
  };
  snippet("ppo", ppo);
  snippet("hopi", hopi);
  snippet("apex", apex);

  SetGauges("ppo", ppo);
  SetGauges("hopi", hopi);
  SetGauges("apex", apex);
  bench::EmitMetricsBlock("strategy_costs", {
                                                bench::Config("nodes", nodes),
                                                bench::Config("repeats", repeats),
                                                bench::Config("probes", probes),
                                            });
  return 0;
}
