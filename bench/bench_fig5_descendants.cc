// Reproduces Figure 5 of the paper: time to return the first k results
// (k = 1..100) of an a//article descendant query, for each of the six
// indexing setups, plus the in-text error rates (fraction of results
// returned out of ascending-distance order: 8.2% HOPI-5000, 10.4%
// HOPI-20000, 13.3% MaximalPPO).
//
// Shape reported by the paper:
//   * HOPI returns all results in near-constant time and is fastest for
//     the full result set;
//   * HOPI-5000 / HOPI-20000 beat HOPI for the *first* results;
//   * MaximalPPO is fastest for the very first results but degrades;
//   * PPO-naive is constantly slower; APEX sits in between.
//
//   $ ./bench_fig5_descendants [--pubs 6210] [--repeats 3]
#include "bench/bench_util.h"

#include <algorithm>
#include <vector>

#include "graph/traversal.h"
#include "workload/query_workload.h"

namespace {

using namespace flix;

// Picks a start element with at least `want` article descendants — the
// paper queries all article descendants of one publication.
NodeId PickStart(const xml::Collection& collection, const graph::Digraph& g,
                 TagId article, size_t want) {
  NodeId best = collection.GlobalId(collection.NumDocuments() - 1, 0);
  size_t best_count = 0;
  // Late publications reach the most cited ancestors; scan a sample.
  for (DocId d = collection.NumDocuments(); d-- > 0;) {
    if ((collection.NumDocuments() - d) > 200) break;
    const NodeId start = collection.GlobalId(d, 0);
    const std::vector<Distance> dist = graph::BfsDistances(g, start);
    size_t count = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (v != start && dist[v] != kUnreachable && g.Tag(v) == article) {
        ++count;
      }
    }
    if (count > best_count) {
      best_count = count;
      best = start;
    }
    if (best_count >= want) break;
  }
  std::printf("query start: element %u (%zu article descendants)\n", best,
              best_count);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 6210);
  const size_t repeats = bench::FlagOr(argc, argv, "--repeats", 3);

  std::printf("=== Figure 5: time vs. number of results for a//article ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  std::printf("corpus: %zu documents, %zu elements, %zu links\n",
              collection.NumDocuments(), collection.NumElements(),
              bench::InterDocLinks(collection));

  const graph::Digraph g = collection.BuildGraph();
  const TagId article = collection.pool().Lookup("article");
  const NodeId start = PickStart(collection, g, article, 120);

  constexpr int kMaxResults = 100;
  const std::vector<int> checkpoints = {1,  10, 20, 30, 40, 50,
                                        60, 70, 80, 90, 100};

  struct SeriesResult {
    std::string label;
    std::vector<double> time_at_k_ms;  // indexed like checkpoints
    double error_rate = 0;
    size_t total_results = 0;
    double total_time_ms = 0;  // time to stream the complete result set
  };
  std::vector<SeriesResult> series;

  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);
    SeriesResult result;
    result.label = setup.label;
    result.time_at_k_ms.assign(checkpoints.size(), -1);

    for (size_t rep = 0; rep < repeats; ++rep) {
      std::vector<core::Result> results;
      std::vector<double> at_k(checkpoints.size(), -1);
      Stopwatch watch;
      core::QueryOptions options;
      // The figure reproduces the paper's per-block evaluation (and its
      // 8-13% out-of-order rates); the lazy cursor pipeline is measured by
      // bench_topk_streaming instead.
      options.materialize = true;
      options.max_results = kMaxResults;
      flix->pee().FindDescendantsByTag(
          start, article, options, [&](const core::Result& r) {
            results.push_back(r);
            for (size_t c = 0; c < checkpoints.size(); ++c) {
              if (static_cast<int>(results.size()) == checkpoints[c]) {
                at_k[c] = watch.ElapsedMillis();
              }
            }
            return true;
          });
      for (size_t c = 0; c < checkpoints.size(); ++c) {
        if (at_k[c] < 0) continue;
        if (result.time_at_k_ms[c] < 0 || at_k[c] < result.time_at_k_ms[c]) {
          result.time_at_k_ms[c] = at_k[c];  // min over repeats
        }
      }
      if (rep == 0) {
        // Error rate and completion time over the full (uncapped) stream —
        // the paper's "fastest to return all results" claim is about the
        // complete set, not the first 100.
        std::vector<core::Result> full;
        Stopwatch full_watch;
        core::QueryOptions full_options;
        full_options.materialize = true;
        flix->pee().FindDescendantsByTag(start, article, full_options,
                                         [&](const core::Result& r) {
                                           full.push_back(r);
                                           return true;
                                         });
        result.total_time_ms = full_watch.ElapsedMillis();
        result.total_results = full.size();
        result.error_rate = workload::OrderErrorRate(full);
      }
    }
    series.push_back(std::move(result));
  }

  // The figure as a table: rows = #results, columns = setups.
  std::printf("\ntime [ms] to return the first k results (min of %zu runs)\n",
              repeats);
  std::printf("%8s", "k");
  for (const SeriesResult& s : series) std::printf(" %12s", s.label.c_str());
  std::printf("\n");
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    std::printf("%8d", checkpoints[c]);
    for (const SeriesResult& s : series) {
      if (s.time_at_k_ms[c] < 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.3f", s.time_at_k_ms[c]);
      }
    }
    std::printf("\n");
  }

  std::printf("\ncomplete result set (%zu results) and error rate (fraction "
              "of results out of ascending-distance order; paper: HOPI-5000 "
              "8.2%%, HOPI-20000 10.4%%, MaximalPPO 13.3%%)\n",
              series.front().total_results);
  for (const SeriesResult& s : series) {
    std::printf("  %-12s all %5zu results in %9.3f ms   error %5.1f%%\n",
                s.label.c_str(), s.total_results, s.total_time_ms,
                100 * s.error_rate);
  }

  const auto find = [&](const std::string& label) -> const SeriesResult& {
    return *std::find_if(series.begin(), series.end(),
                         [&](const SeriesResult& s) { return s.label == label; });
  };
  const size_t k1 = 0;                        // checkpoint index of k=1
  const size_t k100 = checkpoints.size() - 1; // checkpoint index of k=100
  const SeriesResult& hopi = find("HOPI");
  const SeriesResult& hopi5k = find("HOPI-5000");
  const SeriesResult& hopi20k = find("HOPI-20000");
  const SeriesResult& maxppo = find("MaximalPPO");
  const SeriesResult& naive = find("PPO-naive");

  std::printf("\npaper-reported shape:\n");
  bench::Check("HOPI ~constant: t(100) < 3x t(1)",
               hopi.time_at_k_ms[k100] < 3 * hopi.time_at_k_ms[k1] + 0.5);
  bench::Check(
      "HOPI clearly fastest to return the *complete* result set",
      hopi.total_time_ms <= hopi5k.total_time_ms &&
          hopi.total_time_ms <= hopi20k.total_time_ms &&
          hopi.total_time_ms <= maxppo.total_time_ms &&
          hopi.total_time_ms <= naive.total_time_ms);
  bench::Check("HOPI-5000 at least as fast as HOPI for the first result",
               hopi5k.time_at_k_ms[k1] <= hopi.time_at_k_ms[k1] + 0.05);
  bench::Check("HOPI-20000 at least as fast as HOPI for the first result",
               hopi20k.time_at_k_ms[k1] <= hopi.time_at_k_ms[k1] + 0.05);
  bench::Check("MaximalPPO very fast for the first result",
               maxppo.time_at_k_ms[k1] <= hopi.time_at_k_ms[k1] + 0.05);
  bench::Check("MaximalPPO degrades for later results (follows links)",
               maxppo.time_at_k_ms[k100] > maxppo.time_at_k_ms[k1]);
  // The paper's PPO-naive is constantly slowest because every per-document
  // index lookup pays a database round trip; in-memory probes have no such
  // floor. The structurally preserved part of the claim is that the
  // per-document granularity loses against the grouped trees of MaximalPPO
  // and against HOPI on the complete set.
  bench::Check("PPO-naive slower than MaximalPPO (per-document overhead)",
               naive.time_at_k_ms[k100] >= maxppo.time_at_k_ms[k100]);
  bench::Check("PPO-naive slower than HOPI on the complete result set",
               naive.total_time_ms >= hopi.total_time_ms);
  bench::Check("approximate configs have a nonzero but tolerable error rate",
               maxppo.error_rate > 0 && maxppo.error_rate < 0.4);
  bench::EmitMetricsBlock(
      "fig5_descendants",
      {bench::Config("pubs", pubs), bench::Config("repeats", repeats)});
  return 0;
}
