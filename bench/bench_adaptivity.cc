// Adaptivity experiment (paper Section 7 future work: "test the adaptivity
// of FliX with more heterogeneous document collections"; Section 4.3 names
// the intended habitat of each configuration). Three corpus archetypes:
//
//   * INEX-like: few large documents, almost no links -> Naive should win
//     (one PPO per document, queries rarely cross documents);
//   * DBLP-like: many small documents, sparse root-targeting citation
//     links -> Maximal PPO groups them into trees;
//   * Web-like: densely interlinked mid-size documents with intra-document
//     links -> Unconnected HOPI / Hybrid.
//
// For each (corpus, configuration) pair: build cost, index size, average
// query latency, and the self-tuning signal (links followed per query).
//
//   $ ./bench_adaptivity
#include "bench/bench_util.h"

#include <vector>

#include "common/bytes.h"
#include "workload/inex_generator.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

namespace {

using namespace flix;

struct Corpus {
  std::string label;
  xml::Collection collection;
};

std::vector<Corpus> MakeCorpora() {
  std::vector<Corpus> corpora;
  {
    workload::InexOptions options;
    options.num_articles = 150;
    auto c = workload::GenerateInex(options);
    if (!c.ok()) std::exit(1);
    corpora.push_back({"INEX-like", std::move(c).value()});
  }
  {
    workload::DblpOptions options;
    options.num_publications = 1500;
    auto c = workload::GenerateDblp(options);
    if (!c.ok()) std::exit(1);
    corpora.push_back({"DBLP-like", std::move(c).value()});
  }
  {
    workload::SyntheticOptions options;
    options.seed = 17;
    options.tree_docs = 10;
    options.dense_docs = 120;
    options.dense_links_per_doc = 6;
    options.isolated_docs = 10;
    options.min_elements = 40;
    options.max_elements = 160;
    auto c = workload::GenerateSynthetic(options);
    if (!c.ok()) std::exit(1);
    corpora.push_back({"Web-like", std::move(c).value()});
  }
  return corpora;
}

}  // namespace

int main() {
  std::printf("=== Adaptivity: configurations across collection types ===\n");
  const core::MdbConfig configs[] = {
      core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
      core::MdbConfig::kUnconnectedHopi, core::MdbConfig::kHybrid};

  for (Corpus& corpus : MakeCorpora()) {
    const graph::Digraph g = corpus.collection.BuildGraph();
    size_t inter = 0;
    for (const xml::Link& link : corpus.collection.links().links) {
      if (link.IsInterDocument()) ++inter;
    }
    std::printf("\n-- %s: %zu docs, %zu elements (%.0f/doc), %zu "
                "inter-document links --\n",
                corpus.label.c_str(), corpus.collection.NumDocuments(),
                corpus.collection.NumElements(),
                static_cast<double>(corpus.collection.NumElements()) /
                    corpus.collection.NumDocuments(),
                inter);

    workload::QuerySamplerOptions sampler;
    sampler.seed = 23;
    sampler.count = 12;
    sampler.min_results = 3;
    const auto queries =
        workload::SampleDescendantQueries(corpus.collection, g, sampler);

    std::printf("%-16s %8s %10s %10s %12s %12s %10s\n", "config", "metas",
                "size", "build", "query [ms]", "links/query", "error");
    for (const core::MdbConfig config : configs) {
      core::FlixOptions options;
      options.config = config;
      options.partition_bound = 5000;
      const auto flix = bench::MustBuild(corpus.collection, options);

      Stopwatch watch;
      double error = 0;
      for (const auto& q : queries) {
        const auto results = flix->FindDescendantsByName(q.start, q.tag_name);
        error += workload::OrderErrorRate(results);
      }
      const double n = queries.empty() ? 1.0 : queries.size();
      const double query_ms = watch.ElapsedMillis() / n;
      const core::QueryStats stats = flix->CumulativeQueryStats();
      std::printf("%-16s %8zu %10s %8.0fms %12.3f %12.1f %9.1f%%\n",
                  std::string(core::MdbConfigName(config)).c_str(),
                  flix->stats().num_meta_documents,
                  FormatBytes(flix->stats().total_index_bytes).c_str(),
                  flix->stats().build_ms, query_ms,
                  static_cast<double>(stats.links_followed) / n,
                  100 * error / n);
    }
  }

  std::printf(
      "\nexpected (Section 4.3): on INEX-like data the Naive configuration "
      "suffices — tiny PPO indexes, queries rarely leave a document "
      "(links/query ~1); on DBLP-like data Maximal PPO folds the documents "
      "into ~8x fewer meta documents at the same index size; on the dense "
      "Web-like corpus the partitioned configurations absorb links into "
      "their HOPI meta documents, roughly halving run-time link hops at a "
      "moderate size premium. No configuration dominates everywhere — the "
      "premise of the framework.\n");
  bench::EmitMetricsBlock("adaptivity");
  return 0;
}
