// Ablation X1 (DESIGN.md): how the Unconnected HOPI partition bound trades
// off build time, index size, first-result latency and total query time —
// the design choice behind the paper's HOPI-5000 vs HOPI-20000 setups and
// the randomized-partitioning anomaly it mentions (HOPI-20000 not uniformly
// better than HOPI-5000).
//
//   $ ./bench_ablation_partition_size [--pubs 3000]
#include "bench/bench_util.h"

#include <vector>

#include "common/bytes.h"
#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 3000);

  std::printf("=== Ablation: Unconnected HOPI partition size sweep ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  const graph::Digraph g = collection.BuildGraph();
  std::printf("corpus: %zu documents, %zu elements, %zu links\n\n",
              collection.NumDocuments(), collection.NumElements(),
              bench::InterDocLinks(collection));

  workload::QuerySamplerOptions sampler;
  sampler.seed = 11;
  sampler.count = 10;
  sampler.min_results = 20;
  const auto queries =
      workload::SampleDescendantQueries(collection, g, sampler);
  std::printf("%zu sampled descendant queries\n\n", queries.size());

  const size_t bounds[] = {500, 1000, 2000, 5000, 10000, 20000, 50000};
  std::printf("%10s %10s %12s %12s %14s %14s %12s\n", "bound", "metas",
              "size", "build [ms]", "first [ms]", "all [ms]", "error");
  for (const size_t bound : bounds) {
    core::FlixOptions options;
    options.config = core::MdbConfig::kUnconnectedHopi;
    options.partition_bound = bound;
    const auto flix = bench::MustBuild(collection, options);

    double first_ms = 0;
    double all_ms = 0;
    double error = 0;
    for (const auto& q : queries) {
      Stopwatch watch;
      std::vector<core::Result> results;
      double first = 0;
      flix->pee().FindDescendantsByTag(q.start, q.tag, {},
                                       [&](const core::Result& r) {
                                         if (results.empty()) {
                                           first = watch.ElapsedMillis();
                                         }
                                         results.push_back(r);
                                         return true;
                                       });
      first_ms += first;
      all_ms += watch.ElapsedMillis();
      error += workload::OrderErrorRate(results);
    }
    const double n = queries.empty() ? 1 : queries.size();
    std::printf("%10zu %10zu %12s %12.0f %14.3f %14.3f %11.1f%%\n", bound,
                flix->stats().num_meta_documents,
                FormatBytes(flix->stats().total_index_bytes).c_str(),
                flix->stats().build_ms, first_ms / n, all_ms / n,
                100 * error / n);
  }

  std::printf(
      "\nexpected: larger bounds -> fewer, larger meta documents, larger "
      "indexes and slower builds; first-result latency grows with the bound "
      "(a bigger local probe must finish before streaming starts) while the "
      "per-entry probe cost dominates total time, so totals are best at "
      "small bounds and at the monolithic extreme (no link hops at all); "
      "the out-of-order rate drops as fewer blocks are stitched together — "
      "this sweep is the design space between the paper's HOPI-5000 and "
      "HOPI-20000 points, including the anomaly that the larger bound is "
      "not uniformly better (Section 6 attributes it to partition "
      "selection).\n");
  bench::EmitMetricsBlock("ablation_partition_size");
  return 0;
}
