// Reproduces Table 1 of the paper: index sizes of HOPI, APEX, PPO-naive,
// HOPI-5000, HOPI-20000 and Maximal PPO on the DBLP-style corpus, plus the
// transitive-closure size HOPI is compared against in the text.
//
// The published table's absolute numbers are database storage on Oracle 9.2
// and thus not comparable; the *shape* the paper reports is:
//   * HOPI is huge, but > 10x smaller than the transitive closure;
//   * HOPI-5000 needs about twice the space of APEX;
//   * PPO-naive and Maximal PPO are even smaller (Maximal PPO as compact as
//     plain PPO).
//
//   $ ./bench_table1_index_sizes [--pubs 6210]
#include "bench/bench_util.h"

#include <map>

#include "common/bytes.h"
#include "index/transitive_closure.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 6210);

  std::printf("=== Table 1: index sizes (DBLP-style corpus) ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  std::printf("corpus: %zu documents, %zu elements, %zu inter-document "
              "links\n\n",
              collection.NumDocuments(), collection.NumElements(),
              bench::InterDocLinks(collection));

  std::map<std::string, size_t> sizes;
  std::printf("%-12s %14s %14s %10s %22s\n", "index", "size", "build [ms]",
              "meta docs", "strategies (P/H/A)");
  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);
    const core::FlixStats& stats = flix->stats();
    sizes[setup.label] = stats.total_index_bytes;
    char strategies[64];
    std::snprintf(strategies, sizeof(strategies), "%zu/%zu/%zu",
                  stats.num_ppo, stats.num_hopi, stats.num_apex);
    std::printf("%-12s %14s %14.0f %10zu %22s\n", setup.label.c_str(),
                FormatBytes(stats.total_index_bytes).c_str(), stats.build_ms,
                stats.num_meta_documents, strategies);
  }

  // Transitive closure reference ("HOPI an order of magnitude more compact
  // than the transitive closure", Section 6 / [18]).
  const graph::Digraph g = collection.BuildGraph();
  const size_t tc_pairs = index::CountClosurePairs(g);
  const size_t tc_bytes = tc_pairs * sizeof(index::NodeDist);
  std::printf("%-12s %14s   (%zu reachable pairs)\n", "TC",
              FormatBytes(tc_bytes).c_str(), tc_pairs);

  std::printf("\npaper-reported shape:\n");
  bench::Check("HOPI is the largest index",
               sizes["HOPI"] >= sizes["APEX"] &&
                   sizes["HOPI"] >= sizes["PPO-naive"] &&
                   sizes["HOPI"] >= sizes["HOPI-5000"] &&
                   sizes["HOPI"] >= sizes["HOPI-20000"] &&
                   sizes["HOPI"] >= sizes["MaximalPPO"]);
  bench::Check("HOPI is (much) smaller than the transitive closure",
               sizes["HOPI"] < tc_bytes);
  bench::Check("HOPI-5000 within ~2x of APEX (paper: 'about twice')",
               sizes["HOPI-5000"] < 4 * sizes["APEX"]);
  bench::Check("PPO-naive smaller than HOPI-5000",
               sizes["PPO-naive"] < sizes["HOPI-5000"]);
  bench::Check("MaximalPPO smaller than HOPI-5000",
               sizes["MaximalPPO"] < sizes["HOPI-5000"]);
  bench::Check("MaximalPPO about as compact as PPO-naive",
               sizes["MaximalPPO"] < 2 * sizes["PPO-naive"]);
  bench::EmitMetricsBlock("table1_index_sizes");
  return 0;
}
