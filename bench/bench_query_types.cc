// Ablation X3 (DESIGN.md): cost of the other expression types of Section
// 5.2 — A//B type queries (all starts enter the queue at priority 0),
// ancestors-or-self evaluation, wildcard descendants, and distance queries —
// across the FliX configurations.
//
//   $ ./bench_query_types [--pubs 2000]
#include "bench/bench_util.h"

#include <vector>

#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 2000);

  std::printf("=== Query types across configurations (Section 5.2) ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  const graph::Digraph g = collection.BuildGraph();
  std::printf("corpus: %zu documents, %zu elements\n\n",
              collection.NumDocuments(), collection.NumElements());

  const TagId article = collection.pool().Lookup("article");
  const TagId inproceedings = collection.pool().Lookup("inproceedings");
  const TagId author = collection.pool().Lookup("author");

  // Starts for point-ish queries.
  std::vector<NodeId> starts;
  for (DocId d = collection.NumDocuments(); d-- > 0 && starts.size() < 10;) {
    starts.push_back(collection.GlobalId(d, 0));
  }
  const auto pairs = workload::SampleConnectionPairs(g, 20, 101);

  std::printf("%-12s %12s %12s %12s %12s %12s\n", "index", "a//B [ms]",
              "a//* [ms]", "anc [ms]", "A//B [ms]", "dist [ms]");
  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);
    size_t sink_count = 0;
    const auto count_sink = [&](const core::Result&) {
      ++sink_count;
      return true;
    };

    Stopwatch watch;
    for (const NodeId start : starts) {
      flix->pee().FindDescendantsByTag(start, article, {}, count_sink);
    }
    const double desc_ms = watch.ElapsedMillis() / starts.size();

    watch.Restart();
    for (const NodeId start : starts) {
      core::QueryOptions options;
      options.max_results = 500;
      flix->pee().FindDescendants(start, options, count_sink);
    }
    const double wild_ms = watch.ElapsedMillis() / starts.size();

    // Ancestors of a deep element (an author) in each start document.
    std::vector<NodeId> deep;
    for (const NodeId start : starts) {
      const auto loc = collection.Locate(start);
      const auto& doc = collection.document(loc.doc);
      for (xml::ElementId e = 0; e < doc.NumElements(); ++e) {
        if (doc.element(e).tag == author) {
          deep.push_back(collection.GlobalId(loc.doc, e));
          break;
        }
      }
    }
    watch.Restart();
    for (const NodeId node : deep) {
      flix->pee().FindAncestorsByTag(node, inproceedings, {}, count_sink);
    }
    const double anc_ms = watch.ElapsedMillis() / std::max<size_t>(1, deep.size());

    // A//B with a bounded result count (it touches every inproceedings).
    watch.Restart();
    {
      core::QueryOptions options;
      options.max_results = 1000;
      flix->pee().EvaluateTypeQuery(inproceedings, article, options,
                                    count_sink);
    }
    const double type_ms = watch.ElapsedMillis();

    watch.Restart();
    for (const auto& [a, b] : pairs) flix->FindDistance(a, b);
    const double dist_ms = watch.ElapsedMillis() / pairs.size();

    std::printf("%-12s %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                setup.label.c_str(), desc_ms, wild_ms, anc_ms, type_ms,
                dist_ms);
  }

  std::printf(
      "\nexpected: a//B follows Figure 5's ranking; a//* flips it (the "
      "monolithic indexes must enumerate the whole reachable set before "
      "streaming, while fine meta documents stream immediately); ancestors "
      "are cheap everywhere (reverse labels / reverse BFS); A//B is the "
      "most expensive query type — every tag-A element enters the queue at "
      "priority 0 and each one pays a local probe before the result cap can "
      "bite (Section 5.2); distance queries are the cheapest thanks to "
      "early termination.\n");
  bench::EmitMetricsBlock("query_types");
  return 0;
}
