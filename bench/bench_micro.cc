// google-benchmark microbenchmarks for the index primitives: build cost and
// query latency of each path indexing strategy, the PEE's streamed
// evaluation, and the partitioner. Complements the table/figure harnesses,
// which measure end-to-end shapes; this measures the building blocks.
//
//   $ ./bench_micro [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "flix/flix.h"
#include "graph/partition.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "workload/dblp_generator.h"
#include "workload/synthetic_generator.h"

namespace {

using namespace flix;

// Shared corpora, built once (google-benchmark re-enters each benchmark).
const xml::Collection& DblpCorpus() {
  static const xml::Collection* corpus = [] {
    workload::DblpOptions options;
    options.num_publications = 1000;
    auto c = workload::GenerateDblp(options);
    return new xml::Collection(std::move(c).value());
  }();
  return *corpus;
}

const graph::Digraph& DblpGraph() {
  static const graph::Digraph* g =
      new graph::Digraph(DblpCorpus().BuildGraph());
  return *g;
}

graph::Digraph RandomForest(size_t n) {
  Rng rng(1);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(8)));
  for (NodeId i = 1; i < n; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
  }
  return g;
}

void BM_ParseDblpDocument(benchmark::State& state) {
  Rng rng(3);
  workload::DblpOptions options;
  const std::string text = workload::GeneratePublicationXml(options, 500, rng);
  for (auto _ : state) {
    xml::NamePool pool;
    auto doc = xml::ParseDocument(text, "bench", pool);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseDblpDocument);

void BM_PpoBuild(benchmark::State& state) {
  const graph::Digraph g = RandomForest(state.range(0));
  for (auto _ : state) {
    auto index = index::PpoIndex::Build(g);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PpoBuild)->Arg(1000)->Arg(10000);

void BM_HopiBuild(benchmark::State& state) {
  std::vector<NodeId> nodes;
  const graph::Digraph& full = DblpGraph();
  for (NodeId v = 0; v < static_cast<NodeId>(state.range(0)); ++v) {
    nodes.push_back(v);
  }
  const graph::Digraph g = full.InducedSubgraph(nodes);
  for (auto _ : state) {
    auto index = index::HopiIndex::Build(g);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HopiBuild)->Arg(2000)->Arg(8000);

void BM_ApexBuild(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < static_cast<NodeId>(state.range(0)); ++v) {
    nodes.push_back(v);
  }
  const graph::Digraph g = DblpGraph().InducedSubgraph(nodes);
  for (auto _ : state) {
    auto index = index::ApexIndex::Build(g);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ApexBuild)->Arg(2000)->Arg(8000);

void BM_FbSummaryBuild(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < static_cast<NodeId>(state.range(0)); ++v) {
    nodes.push_back(v);
  }
  const graph::Digraph g = DblpGraph().InducedSubgraph(nodes);
  for (auto _ : state) {
    auto index = index::SummaryIndex::BuildFb(g);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_FbSummaryBuild)->Arg(2000);

void BM_HopiDistanceQuery(benchmark::State& state) {
  static const auto index = index::HopiIndex::Build(DblpGraph());
  const size_t n = DblpGraph().NumNodes();
  Rng rng(7);
  for (auto _ : state) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(index->DistanceBetween(a, b));
  }
}
BENCHMARK(BM_HopiDistanceQuery);

void BM_HopiDescendantsByTag(benchmark::State& state) {
  static const auto index = index::HopiIndex::Build(DblpGraph());
  const TagId article = DblpCorpus().pool().Lookup("article");
  Rng rng(9);
  const size_t docs = DblpCorpus().NumDocuments();
  for (auto _ : state) {
    const NodeId start = DblpCorpus().GlobalId(
        static_cast<DocId>(rng.Uniform(docs)), 0);
    benchmark::DoNotOptimize(index->DescendantsByTag(start, article));
  }
}
BENCHMARK(BM_HopiDescendantsByTag);

void BM_PartitionBySize(benchmark::State& state) {
  const std::vector<uint32_t> doc_of = DblpCorpus().DocOfNode();
  for (auto _ : state) {
    graph::PartitionOptions options;
    options.max_nodes = static_cast<size_t>(state.range(0));
    auto parts = graph::PartitionBySize(DblpGraph(), options, &doc_of);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_PartitionBySize)->Arg(1000)->Arg(5000);

void BM_FlixBuild(benchmark::State& state) {
  for (auto _ : state) {
    core::FlixOptions options;
    options.config = static_cast<core::MdbConfig>(state.range(0));
    options.partition_bound = 5000;
    auto flix = core::Flix::Build(DblpCorpus(), options);
    benchmark::DoNotOptimize(flix);
  }
}
BENCHMARK(BM_FlixBuild)
    ->Arg(static_cast<int>(core::MdbConfig::kNaive))
    ->Arg(static_cast<int>(core::MdbConfig::kMaximalPpo))
    ->Arg(static_cast<int>(core::MdbConfig::kUnconnectedHopi))
    ->Arg(static_cast<int>(core::MdbConfig::kHybrid));

void BM_PeeStreamedQuery(benchmark::State& state) {
  static const auto flix = [] {
    core::FlixOptions options;
    options.config = core::MdbConfig::kHybrid;
    options.partition_bound = 5000;
    return std::move(core::Flix::Build(DblpCorpus(), options)).value();
  }();
  const NodeId start =
      DblpCorpus().GlobalId(static_cast<DocId>(DblpCorpus().NumDocuments() - 1), 0);
  const TagId article = DblpCorpus().pool().Lookup("article");
  for (auto _ : state) {
    size_t count = 0;
    core::QueryOptions options;
    options.max_results = 100;
    flix->pee().FindDescendantsByTag(start, article, options,
                                     [&](const core::Result&) {
                                       ++count;
                                       return true;
                                     });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PeeStreamedQuery);

void BM_PeeConnectionTest(benchmark::State& state) {
  static const auto flix = [] {
    core::FlixOptions options;
    options.config = core::MdbConfig::kHybrid;
    return std::move(core::Flix::Build(DblpCorpus(), options)).value();
  }();
  const size_t n = DblpCorpus().NumElements();
  Rng rng(13);
  for (auto _ : state) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(flix->IsConnected(a, b));
  }
}
BENCHMARK(BM_PeeConnectionTest);

}  // namespace

// Expanded BENCHMARK_MAIN() so the metrics block lands after the report:
// the FliX builds and PEE queries above feed the registry as a side effect.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flix::bench::EmitMetricsBlock("micro");
  return 0;
}
