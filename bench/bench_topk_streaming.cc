// Streaming vs. materializing evaluation: time-to-first-result (TTFR) and
// time-to-k for top-k descendant queries, across three workload shapes.
//
// The lazy cursor pipeline should deliver the first result long before the
// legacy path (QueryOptions::materialize), which drains every index probe
// into a sorted block before emitting anything. The gap is widest on the
// monolithic-HOPI configuration over the DBLP-style corpus: one meta
// document means the legacy path materializes the *entire* result set up
// front, while the cursor merge emits as soon as the first 2-hop lists
// yield their heads.
//
//   $ ./bench_topk_streaming [--pubs 3000] [--repeats 5] [--no-profiler]
//
// --no-profiler disables per-partition workload attribution, so the bench
// doubles as the profiler-overhead measurement (compare total_ms of the
// two modes).
#include "bench/bench_util.h"

#include <string>
#include <utility>
#include <vector>

#include "flix/adapt.h"
#include "graph/traversal.h"
#include "workload/inex_generator.h"
#include "workload/synthetic_generator.h"

namespace {

using namespace flix;

struct Timings {
  double ttfr_ms = -1;      // time to the first result
  double at_k10_ms = -1;    // time to the 10th result
  double at_k100_ms = -1;   // time to the 100th result
  double total_ms = -1;     // full stream
  size_t results = 0;
};

// One timed query; k-capped at 100 results like the paper's Figure 5 runs.
Timings RunOnce(const core::Flix& flix, NodeId start, TagId tag,
                bool wildcard, bool materialize) {
  Timings t;
  core::QueryOptions options;
  options.materialize = materialize;
  size_t count = 0;
  Stopwatch watch;
  const core::ResultSink sink = [&](const core::Result&) {
    ++count;
    if (count == 1) t.ttfr_ms = watch.ElapsedMillis();
    if (count == 10) t.at_k10_ms = watch.ElapsedMillis();
    if (count == 100) t.at_k100_ms = watch.ElapsedMillis();
    return true;
  };
  if (wildcard) {
    flix.pee().FindDescendants(start, options, sink);
  } else {
    flix.pee().FindDescendantsByTag(start, tag, options, sink);
  }
  t.total_ms = watch.ElapsedMillis();
  t.results = count;
  return t;
}

// Min over repeats, per field (fields are independent minima; each is a
// best-case latency like Figure 5's min-of-runs convention).
Timings RunBest(const core::Flix& flix, NodeId start, TagId tag,
                bool wildcard, bool materialize, size_t repeats) {
  Timings best;
  for (size_t rep = 0; rep < repeats; ++rep) {
    const Timings t = RunOnce(flix, start, tag, wildcard, materialize);
    const auto keep = [](double& slot, double value) {
      if (value >= 0 && (slot < 0 || value < slot)) slot = value;
    };
    keep(best.ttfr_ms, t.ttfr_ms);
    keep(best.at_k10_ms, t.at_k10_ms);
    keep(best.at_k100_ms, t.at_k100_ms);
    keep(best.total_ms, t.total_ms);
    best.results = t.results;
  }
  return best;
}

// Picks the element with the most descendants among the sampled roots, so
// every workload queries a result set comfortably past k=100.
NodeId PickRichStart(const xml::Collection& collection, size_t sample) {
  const graph::Digraph g = collection.BuildGraph();
  NodeId best = collection.GlobalId(0, 0);
  size_t best_count = 0;
  for (DocId d = collection.NumDocuments(); d-- > 0;) {
    if (collection.NumDocuments() - d > sample) break;
    const NodeId start = collection.GlobalId(d, 0);
    const std::vector<Distance> dist = graph::BfsDistances(g, start);
    size_t count = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (v != start && dist[v] != kUnreachable) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best = start;
    }
  }
  std::printf("  start element %u (%zu reachable descendants)\n", best,
              best_count);
  return best;
}

struct Workload {
  std::string label;
  xml::Collection collection;
  core::FlixOptions options;
  TagId tag = kInvalidTag;  // kInvalidTag = wildcard a//*
};

void Report(const char* label, const Timings& streaming,
            const Timings& legacy) {
  const auto cell = [](double v) { return v < 0 ? 0.0 : v; };
  std::printf("  %-10s %10s %10s %10s %10s %8s\n", label, "ttfr", "k=10",
              "k=100", "total", "results");
  std::printf("  %-10s %9.3fms %9.3fms %9.3fms %9.3fms %8zu\n", "streaming",
              cell(streaming.ttfr_ms), cell(streaming.at_k10_ms),
              cell(streaming.at_k100_ms), cell(streaming.total_ms),
              streaming.results);
  std::printf("  %-10s %9.3fms %9.3fms %9.3fms %9.3fms %8zu\n", "legacy",
              cell(legacy.ttfr_ms), cell(legacy.at_k10_ms),
              cell(legacy.at_k100_ms), cell(legacy.total_ms), legacy.results);
  if (streaming.ttfr_ms > 0 && legacy.ttfr_ms > 0) {
    std::printf("  TTFR speedup: %.1fx\n", legacy.ttfr_ms / streaming.ttfr_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 3000);
  const size_t repeats = bench::FlagOr(argc, argv, "--repeats", 5);
  const bool profiling = !bench::HasFlag(argc, argv, "--no-profiler");

  std::printf("=== top-k streaming: lazy cursors vs. materialized probes ===\n");

  std::vector<Workload> workloads;
  {
    // Headline: monolithic HOPI over DBLP — one meta document, so the
    // legacy path materializes everything before the first emit.
    Workload w;
    w.label = "dblp-hopi";
    w.collection = bench::MakeCorpus(pubs);
    w.options.config = core::MdbConfig::kUnconnectedHopi;
    w.options.partition_bound = std::numeric_limits<size_t>::max();
    w.tag = w.collection.pool().Lookup("article");
    workloads.push_back(std::move(w));
  }
  {
    // INEX shape: large documents, few links (Naive configuration).
    Workload w;
    w.label = "inex-naive";
    workload::InexOptions options;
    options.num_articles = 200;
    auto collection = workload::GenerateInex(options);
    if (!collection.ok()) {
      std::fprintf(stderr, "inex generation failed\n");
      return 1;
    }
    w.collection = std::move(collection).value();
    w.options.config = core::MdbConfig::kNaive;
    workloads.push_back(std::move(w));
  }
  {
    // Heterogeneous synthetic collection with the default FliX config.
    Workload w;
    w.label = "synthetic";
    workload::SyntheticOptions options;
    options.seed = 13;
    auto collection = workload::GenerateSynthetic(options);
    if (!collection.ok()) {
      std::fprintf(stderr, "synthetic generation failed\n");
      return 1;
    }
    w.collection = std::move(collection).value();
    workloads.push_back(std::move(w));
  }

  double headline_speedup = 0;
  for (Workload& w : workloads) {
    w.options.workload_profiling = profiling;
    std::printf("\n--- %s: %zu documents, %zu elements, %zu links ---\n",
                w.label.c_str(), w.collection.NumDocuments(),
                w.collection.NumElements(),
                bench::InterDocLinks(w.collection));
    const auto flix = bench::MustBuild(w.collection, w.options);
    const NodeId start = PickRichStart(w.collection, 200);
    const bool wildcard = w.tag == kInvalidTag;

    const Timings streaming =
        RunBest(*flix, start, w.tag, wildcard, /*materialize=*/false, repeats);
    const Timings legacy =
        RunBest(*flix, start, w.tag, wildcard, /*materialize=*/true, repeats);
    Report(w.label.c_str(), streaming, legacy);

    if (w.label == "dblp-hopi" && streaming.ttfr_ms > 0) {
      headline_speedup = legacy.ttfr_ms / streaming.ttfr_ms;
    }
  }

  // --- adaptive phase: a partitioned DBLP index provisioned on the wrong
  // strategy (forced APEX), repaired online by the workload-adaptive ISS.
  // The reduction we gate on is *work served by the expensive strategy*:
  // probes + cursor pulls attributed by the profiler to APEX partitions,
  // before vs. after migration, under the identical replayed workload.
  uint64_t apex_work_before = 0;
  uint64_t apex_work_after = 0;
  size_t adapt_migrated = 0;
  {
    std::printf("\n--- adaptive: forced-APEX dblp, online APEX -> HOPI ---\n");
    const xml::Collection collection = bench::MakeCorpus(pubs);
    core::FlixOptions options;
    options.config = core::MdbConfig::kUnconnectedHopi;
    options.partition_bound = 5000;
    options.iss_policy = core::IssPolicy::kForceApex;
    options.workload_profiling = true;
    const auto flix = bench::MustBuild(collection, options);
    flix->SetAdaptiveIss(true);

    const auto run_workload = [&] {
      Stopwatch watch;
      for (size_t pass = 0; pass < 6; ++pass) {
        for (DocId d = 0; d < collection.NumDocuments();
             d += collection.NumDocuments() / 60 + 1) {
          flix->FindDescendantsByName(collection.GlobalId(d, 0), "article");
        }
      }
      return watch.ElapsedMillis();
    };
    const auto apex_work = [](const obs::WorkloadProfile& profile) {
      uint64_t work = 0;
      for (const obs::PartitionProfile& p : profile.partitions) {
        if (p.strategy == "APEX") work += p.index_probes + p.cursor_pulls;
      }
      return work;
    };

    const double before_ms = run_workload();
    apex_work_before = apex_work(flix->Profile());

    // A bench replays a short workload window; demand one rebuild's payback
    // instead of the production default of three (see AdaptOptions).
    core::AdaptOptions adapt;
    adapt.hysteresis = 1.0;
    core::StrategyMigrator migrator(*flix, core::CostModel::Measured(), adapt);
    const auto migrated = migrator.RunOnce();
    if (!migrated.ok()) {
      std::fprintf(stderr, "adaptive migration failed: %s\n",
                   migrated.status().ToString().c_str());
      return 1;
    }
    adapt_migrated = *migrated;

    flix->profiler().Reset();  // observe only the replayed workload
    const double after_ms = run_workload();
    apex_work_after = apex_work(flix->Profile());

    std::printf("  migrated %zu partition(s)\n", adapt_migrated);
    std::printf("  APEX-attributed work: %llu probes+pulls before, %llu "
                "after\n",
                static_cast<unsigned long long>(apex_work_before),
                static_cast<unsigned long long>(apex_work_after));
    std::printf("  workload wall time: %.1fms before, %.1fms after\n",
                before_ms, after_ms);

    auto& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("bench.adapt.migrated")
        .Set(static_cast<int64_t>(adapt_migrated));
    reg.GetGauge("bench.adapt.apex_work_before")
        .Set(static_cast<int64_t>(apex_work_before));
    reg.GetGauge("bench.adapt.apex_work_after")
        .Set(static_cast<int64_t>(apex_work_after));
  }

  std::printf("\nacceptance:\n");
  bench::Check("streaming TTFR at least 2x faster on dblp-hopi",
               headline_speedup >= 2.0);
  bench::Check("adaptive ISS migrated at least one partition",
               adapt_migrated >= 1);
  bench::Check("migration reduced expensive-strategy probe count",
               apex_work_after < apex_work_before);
  bench::EmitMetricsBlock(
      "topk_streaming",
      {bench::Config("pubs", pubs), bench::Config("repeats", repeats),
       bench::Config("profiler", profiling ? "on" : "off")});
  return 0;
}
