// Ablation X2 (DESIGN.md): index build time and size vs. collection size.
// Section 2.2 motivates FliX with "the time to build HOPI superlinearly
// increases with increasing number of documents" — the bounded-partition
// configurations are supposed to scale gently.
//
//   $ ./bench_build_scaling [--max-pubs 6210]
#include "bench/bench_util.h"

#include <vector>

#include "common/bytes.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t max_pubs = bench::FlagOr(argc, argv, "--max-pubs", 6210);

  std::printf("=== Build scaling: HOPI vs bounded FliX configurations ===\n");
  std::vector<size_t> sizes;
  for (size_t s = max_pubs / 8; s <= max_pubs; s *= 2) sizes.push_back(s);
  if (sizes.empty() || sizes.back() != max_pubs) sizes.push_back(max_pubs);

  const bench::Setup setups[] = {
      bench::PaperSetups()[0],  // HOPI (monolithic)
      bench::PaperSetups()[3],  // HOPI-5000
      bench::PaperSetups()[5],  // MaximalPPO
      bench::PaperSetups()[2],  // PPO-naive
  };

  std::printf("%10s %12s", "pubs", "elements");
  for (const auto& setup : setups) {
    std::printf(" %12s %10s", (setup.label + " ms").c_str(), "size");
  }
  std::printf("\n");

  struct Row {
    size_t pubs;
    std::vector<double> build_ms;
  };
  std::vector<Row> rows;

  for (const size_t pubs : sizes) {
    xml::Collection collection = bench::MakeCorpus(pubs);
    std::printf("%10zu %12zu", pubs, collection.NumElements());
    Row row;
    row.pubs = pubs;
    for (const auto& setup : setups) {
      const auto flix = bench::MustBuild(collection, setup.options);
      row.build_ms.push_back(flix->stats().build_ms);
      std::printf(" %12.0f %10s", flix->stats().build_ms,
                  FormatBytes(flix->stats().total_index_bytes).c_str());
    }
    std::printf("\n");
    rows.push_back(std::move(row));
  }

  if (rows.size() >= 2) {
    const Row& first = rows.front();
    const Row& last = rows.back();
    const double growth = static_cast<double>(last.pubs) / first.pubs;
    std::printf("\ncollection grew %.1fx; build time growth per setup:\n",
                growth);
    for (size_t s = 0; s < std::size(setups); ++s) {
      const double factor =
          last.build_ms[s] / std::max(first.build_ms[s], 0.001);
      std::printf("  %-12s %.1fx%s\n", setups[s].label.c_str(), factor,
                  factor > growth * 2 ? "  (superlinear)" : "");
    }
    std::printf("\npaper-reported shape: monolithic HOPI grows superlinearly;"
                " bounded configurations track collection size.\n");
  }
  bench::EmitMetricsBlock("build_scaling");
  return 0;
}
