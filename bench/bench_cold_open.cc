// Cold-open latency: the time from opening a saved index file to serving
// the first query result, stream (heap) format vs paged (mmap) format.
//
// The heap format must deserialize every structure before the first probe;
// the paged format mmaps the file and answers out of the mapping, touching
// only the pages the query needs. The acceptance gate — mmap time-to-first-
// result at least 5x faster than heap — is what justifies the paged format
// for beyond-RAM collections (see DESIGN.md "Paged storage format").
//
//   $ ./bench_cold_open [--pubs 6210] [--repeats 5]
#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 6210);
  const size_t repeats = bench::FlagOr(argc, argv, "--repeats", 5);

  std::printf("=== Cold open: time to first result, heap vs mmap ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  std::printf("corpus: %zu documents, %zu elements\n",
              collection.NumDocuments(), collection.NumElements());

  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  const auto built = bench::MustBuild(collection, options);

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string heap_path = dir + "/bench_cold_open_heap.flix";
  const std::string mapped_path = dir + "/bench_cold_open_mapped.flix";
  if (!built->Save(heap_path, core::Flix::IndexFormat::kHeap).ok() ||
      !built->Save(mapped_path, core::Flix::IndexFormat::kMapped).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }
  std::printf("files: heap %.2f MB, mapped %.2f MB\n",
              std::filesystem::file_size(heap_path) / 1e6,
              std::filesystem::file_size(mapped_path) / 1e6);

  const NodeId start = collection.GlobalId(0, 0);

  // One cold open: path-based Load, then a descendant query aborted at its
  // first result. Checksum verification is off for the mapped side — the
  // up-front sweep reads the whole file, which is exactly what a cold
  // beyond-RAM open must avoid (deferred detection via flixctl check).
  struct ColdOpen {
    uint64_t load_ns = 0;
    uint64_t total_ns = 0;  // load + first result
  };
  const auto time_to_first_result = [&](const std::string& path) -> ColdOpen {
    core::Flix::LoadOptions load_options;
    load_options.verify_checksums = false;
    Stopwatch watch;
    auto flix = core::Flix::Load(path, collection, load_options);
    if (!flix.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   flix.status().ToString().c_str());
      std::exit(1);
    }
    ColdOpen result;
    result.load_ns = watch.ElapsedNanos();
    bool got_result = false;
    (*flix)->FindDescendantsByName(start, "author", {},
                                   [&](const core::Result&) {
                                     got_result = true;
                                     return false;  // stop at the first hit
                                   });
    result.total_ns = watch.ElapsedNanos();
    if (!got_result) {
      std::fprintf(stderr, "query returned no results\n");
      std::exit(1);
    }
    return result;
  };

  // Repeats are batched per format, not interleaved. Tearing down a heap
  // instance frees megabytes of small chunks, and glibc makes the very next
  // allocations pay for consolidating those cold free lists — interleaving
  // would bill that cost to the other format's load. A real cold open runs
  // in a fresh process; batching keeps each measurement's allocator state
  // shaped by its own format only (best-of-N drops the one crossover repeat).
  auto& registry = obs::MetricsRegistry::Global();
  std::vector<uint64_t> heap_ns;
  std::vector<uint64_t> mapped_ns;
  std::vector<uint64_t> heap_load_ns;
  std::vector<uint64_t> mapped_load_ns;
  for (size_t r = 0; r < repeats; ++r) {
    const ColdOpen heap = time_to_first_result(heap_path);
    heap_ns.push_back(heap.total_ns);
    heap_load_ns.push_back(heap.load_ns);
    registry.GetHistogram("bench.cold_open.heap_ns").Record(heap.total_ns);
  }
  for (size_t r = 0; r < repeats; ++r) {
    const ColdOpen mapped = time_to_first_result(mapped_path);
    mapped_ns.push_back(mapped.total_ns);
    mapped_load_ns.push_back(mapped.load_ns);
    registry.GetHistogram("bench.cold_open.mapped_ns").Record(mapped.total_ns);
  }

  // Best-of-N for the gate: the minimum is the least noisy estimate of the
  // format's intrinsic cost on a shared machine.
  const uint64_t heap_best = *std::min_element(heap_ns.begin(), heap_ns.end());
  const uint64_t mapped_best =
      *std::min_element(mapped_ns.begin(), mapped_ns.end());
  const auto avg = [](const std::vector<uint64_t>& v) {
    uint64_t sum = 0;
    for (const uint64_t x : v) sum += x;
    return static_cast<double>(sum) / v.size() / 1e6;
  };
  std::printf("\n%-8s %14s %14s %14s\n", "format", "best [ms]", "avg [ms]",
              "avg load [ms]");
  std::printf("%-8s %14.3f %14.3f %14.3f\n", "heap", heap_best / 1e6,
              avg(heap_ns), avg(heap_load_ns));
  std::printf("%-8s %14.3f %14.3f %14.3f\n", "mmap", mapped_best / 1e6,
              avg(mapped_ns), avg(mapped_load_ns));
  const double speedup =
      static_cast<double>(heap_best) / static_cast<double>(mapped_best);
  std::printf("speedup: %.1fx\n\n", speedup);

  bench::Check("mmap cold open >= 5x faster than heap", speedup >= 5.0);

  bench::EmitMetricsBlock("cold_open", {bench::Config("pubs", pubs),
                                        bench::Config("repeats", repeats)});
  return speedup >= 5.0 ? 0 : 1;
}
