// Shared plumbing for the experiment-reproduction benches: corpus setup,
// the six indexing setups of the paper's Section 6, and timing helpers.
//
// Timing records through the observability layer (obs/): builds and queries
// feed the process-wide metrics registry, and every bench prints a
// machine-readable `BENCH_<name>.json: {...}` block on exit via
// EmitMetricsBlock, so runs can be diffed by scripts instead of scraping
// the human-readable tables.
#ifndef FLIX_BENCH_BENCH_UTIL_H_
#define FLIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "flix/flix.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/dblp_generator.h"

namespace flix::bench {

// One experimental setup from the paper: a label plus FliX options.
struct Setup {
  std::string label;
  core::FlixOptions options;
};

// The six competitors of Section 6. "HOPI" and "APEX" are the monolithic
// indexes over the complete collection (realized as one unbounded
// partition); the FliX configurations follow the paper.
inline std::vector<Setup> PaperSetups() {
  std::vector<Setup> setups;
  {
    Setup s;
    s.label = "HOPI";
    s.options.config = core::MdbConfig::kUnconnectedHopi;
    s.options.partition_bound = std::numeric_limits<size_t>::max();
    setups.push_back(s);
  }
  {
    Setup s;
    s.label = "APEX";
    s.options.config = core::MdbConfig::kUnconnectedHopi;
    s.options.partition_bound = std::numeric_limits<size_t>::max();
    s.options.iss_policy = core::IssPolicy::kForceApex;
    setups.push_back(s);
  }
  {
    Setup s;
    s.label = "PPO-naive";
    s.options.config = core::MdbConfig::kNaive;
    setups.push_back(s);
  }
  {
    Setup s;
    s.label = "HOPI-5000";
    s.options.config = core::MdbConfig::kUnconnectedHopi;
    s.options.partition_bound = 5000;
    setups.push_back(s);
  }
  {
    Setup s;
    s.label = "HOPI-20000";
    s.options.config = core::MdbConfig::kUnconnectedHopi;
    s.options.partition_bound = 20000;
    setups.push_back(s);
  }
  {
    Setup s;
    s.label = "MaximalPPO";
    s.options.config = core::MdbConfig::kMaximalPpo;
    setups.push_back(s);
  }
  return setups;
}

// Generates the DBLP-style corpus at the paper's scale divided by `scale`
// (scale 1 = 6,210 publications / ~169k elements / ~25k links).
inline xml::Collection MakeCorpus(size_t num_publications) {
  workload::DblpOptions options;
  options.num_publications = num_publications;
  auto collection = workload::GenerateDblp(options);
  if (!collection.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 collection.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(collection).value();
}

inline size_t InterDocLinks(const xml::Collection& collection) {
  size_t count = 0;
  for (const xml::Link& link : collection.links().links) {
    if (link.IsInterDocument()) ++count;
  }
  return count;
}

inline std::unique_ptr<core::Flix> MustBuild(const xml::Collection& collection,
                                             const core::FlixOptions& options) {
  // Span instead of ad-hoc timing: build latency lands in the same
  // histogram family the engine itself records into.
  obs::TraceSpan span(
      &obs::MetricsRegistry::Global().GetHistogram("bench.build_ns"),
      "bench.build");
  auto flix = core::Flix::Build(collection, options);
  if (!flix.ok()) {
    std::fprintf(stderr, "build failed: %s\n", flix.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(flix).value();
}

// Simple --flag value parsing.
inline size_t FlagOr(int argc, char** argv, const char* name,
                     size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::stoul(argv[i + 1]);
    }
  }
  return fallback;
}

// True when the bare flag `name` is present.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// Relation check line for the qualitative, paper-reported shape.
inline void Check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
}

// A bench-run parameter recorded in the emitted envelope. bench_compare
// refuses to diff runs whose config key/value lists differ, so anything
// that changes the workload shape (corpus size, repeats, k) belongs here.
struct ConfigEntry {
  std::string key;
  std::string value;
};

inline ConfigEntry Config(const char* key, size_t value) {
  return ConfigEntry{key, std::to_string(value)};
}

inline ConfigEntry Config(const char* key, const char* value) {
  return ConfigEntry{key, value};
}

// Prints the machine-readable metrics block; call once at the end of main.
// The core query series are touched first so the block always contains the
// query latency histogram and the four QueryStats counters, even for a
// bench that never queried (their values are then zero).
//
// Envelope schema (version 2):
//   BENCH_<name>.json: {"schema_version":2,"bench":"<name>",
//                       "config":{"k":"v",...},"metrics":{<obs::ToJson>}}
// Version 1 blocks were the bare obs::ToJson snapshot; bench_compare
// refuses them (no identity to match against).
inline void EmitMetricsBlock(const char* bench_name,
                             const std::vector<ConfigEntry>& config = {}) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram("flix.query.latency_ns");
  reg.GetCounter("flix.query.entries_processed");
  reg.GetCounter("flix.query.entries_dominated");
  reg.GetCounter("flix.query.links_followed");
  reg.GetCounter("flix.query.index_probes");
  const std::string metrics = obs::ToJson(reg.Snapshot());
  std::string envelope = "{\"schema_version\":2,\"bench\":\"";
  envelope += bench_name;
  envelope += "\",\"config\":{";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) envelope += ',';
    envelope += '"';
    envelope += config[i].key;
    envelope += "\":\"";
    envelope += config[i].value;
    envelope += '"';
  }
  envelope += "},\"metrics\":";
  envelope += metrics;
  envelope += '}';
  std::printf("\nBENCH_%s.json: %s\n", bench_name, envelope.c_str());
}

}  // namespace flix::bench

#endif  // FLIX_BENCH_BENCH_UTIL_H_
