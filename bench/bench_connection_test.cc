// Reproduces the in-text connection-test experiment of Section 6: "we also
// experimented with testing if two nodes are connected. Here, we found the
// same performance trend as before, only with lower absolute numbers."
// Also exercises the bidirectional variant sketched in Section 5.2.
//
//   $ ./bench_connection_test [--pubs 6210] [--pairs 50]
#include "bench/bench_util.h"

#include <vector>

#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 6210);
  const size_t num_pairs = bench::FlagOr(argc, argv, "--pairs", 50);

  std::printf("=== Connection tests (Section 6, in-text) ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  const graph::Digraph g = collection.BuildGraph();
  std::printf("corpus: %zu documents, %zu elements\n",
              collection.NumDocuments(), collection.NumElements());

  const auto pairs = workload::SampleConnectionPairs(g, num_pairs, 97);
  std::printf("%zu (a, b) pairs, about half connected\n\n", pairs.size());

  std::printf("%-12s %16s %16s %12s\n", "index", "avg unidir [ms]",
              "avg bidir [ms]", "connected");
  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);

    size_t connected = 0;
    Stopwatch uni;
    for (const auto& [a, b] : pairs) {
      if (flix->IsConnected(a, b)) ++connected;
    }
    const double uni_ms = uni.ElapsedMillis() / pairs.size();

    Stopwatch bidi;
    size_t connected_bidi = 0;
    for (const auto& [a, b] : pairs) {
      if (flix->pee().IsConnectedBidirectional(a, b)) ++connected_bidi;
    }
    const double bidi_ms = bidi.ElapsedMillis() / pairs.size();

    std::printf("%-12s %16.3f %16.3f %7zu/%zu\n", setup.label.c_str(), uni_ms,
                bidi_ms, connected, pairs.size());
    if (connected != connected_bidi) {
      std::printf("  WARNING: unidirectional and bidirectional disagree "
                  "(%zu vs %zu)\n",
                  connected, connected_bidi);
    }
  }

  std::printf("\npaper-reported shape: same trend as Figure 5 with lower "
              "absolute numbers (compare the per-query times above with the "
              "k=100 column of bench_fig5_descendants).\n");
  bench::EmitMetricsBlock(
      "connection_test",
      {bench::Config("pubs", pubs), bench::Config("pairs", num_pairs)});
  return 0;
}
