// Reproduces the in-text connection-test experiment of Section 6: "we also
// experimented with testing if two nodes are connected. Here, we found the
// same performance trend as before, only with lower absolute numbers."
// Also exercises the bidirectional variant sketched in Section 5.2.
//
//   $ ./bench_connection_test [--pubs 6210] [--pairs 50]
#include "bench/bench_util.h"

#include <vector>

#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace flix;
  const size_t pubs = bench::FlagOr(argc, argv, "--pubs", 6210);
  const size_t num_pairs = bench::FlagOr(argc, argv, "--pairs", 50);

  std::printf("=== Connection tests (Section 6, in-text) ===\n");
  xml::Collection collection = bench::MakeCorpus(pubs);
  const graph::Digraph g = collection.BuildGraph();
  std::printf("corpus: %zu documents, %zu elements\n",
              collection.NumDocuments(), collection.NumElements());

  const auto pairs = workload::SampleConnectionPairs(g, num_pairs, 97);
  std::printf("%zu (a, b) pairs, about half connected\n\n", pairs.size());

  std::printf("%-12s %16s %16s %12s\n", "index", "avg unidir [ms]",
              "avg bidir [ms]", "connected");
  for (const bench::Setup& setup : bench::PaperSetups()) {
    const auto flix = bench::MustBuild(collection, setup.options);

    size_t connected = 0;
    Stopwatch uni;
    for (const auto& [a, b] : pairs) {
      if (flix->IsConnected(a, b)) ++connected;
    }
    const double uni_ms = uni.ElapsedMillis() / pairs.size();

    Stopwatch bidi;
    size_t connected_bidi = 0;
    for (const auto& [a, b] : pairs) {
      if (flix->pee().IsConnectedBidirectional(a, b)) ++connected_bidi;
    }
    const double bidi_ms = bidi.ElapsedMillis() / pairs.size();

    std::printf("%-12s %16.3f %16.3f %7zu/%zu\n", setup.label.c_str(), uni_ms,
                bidi_ms, connected, pairs.size());
    if (connected != connected_bidi) {
      std::printf("  WARNING: unidirectional and bidirectional disagree "
                  "(%zu vs %zu)\n",
                  connected, connected_bidi);
    }
  }

  std::printf("\npaper-reported shape: same trend as Figure 5 with lower "
              "absolute numbers (compare the per-query times above with the "
              "k=100 column of bench_fig5_descendants).\n");

  // Guided vs blind: the landmark cache's A* must return byte-identical
  // answers while popping at most half the queue entries of the blind
  // Dijkstra. Uses a dedicated partitioned hybrid build — the monolithic
  // setups above have no cross-partition walk to guide.
  std::printf("\n=== Guided vs blind point queries (landmark A*) ===\n");
  core::FlixOptions hybrid_options;
  hybrid_options.config = core::MdbConfig::kHybrid;
  hybrid_options.partition_bound = 2000;
  const auto hybrid = bench::MustBuild(collection, hybrid_options);

  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& pop_counter = registry.GetCounter("flix.query.point_pops");
  obs::Counter& pruned_counter =
      registry.GetCounter("flix.pee.guided.pruned_entries");

  std::vector<Distance> guided_answers;
  std::vector<Distance> blind_answers;
  guided_answers.reserve(pairs.size());
  blind_answers.reserve(pairs.size());

  const uint64_t pruned_before = pruned_counter.Value();
  uint64_t pops_before = pop_counter.Value();
  Stopwatch guided_watch;
  for (const auto& [a, b] : pairs) {
    guided_answers.push_back(hybrid->FindDistance(a, b));
  }
  const double guided_ms = guided_watch.ElapsedMillis() / pairs.size();
  const uint64_t guided_pops = pop_counter.Value() - pops_before;
  const uint64_t pruned_entries = pruned_counter.Value() - pruned_before;

  hybrid->SetLandmarksEnabled(false);
  pops_before = pop_counter.Value();
  Stopwatch blind_watch;
  for (const auto& [a, b] : pairs) {
    blind_answers.push_back(hybrid->FindDistance(a, b));
  }
  const double blind_ms = blind_watch.ElapsedMillis() / pairs.size();
  const uint64_t blind_pops = pop_counter.Value() - pops_before;
  hybrid->SetLandmarksEnabled(true);

  std::printf("%-12s %16s %16s %12s\n", "mode", "avg query [ms]",
              "queue pops", "pruned");
  std::printf("%-12s %16.3f %16llu %12llu\n", "guided", guided_ms,
              static_cast<unsigned long long>(guided_pops),
              static_cast<unsigned long long>(pruned_entries));
  std::printf("%-12s %16.3f %16llu %12s\n", "blind", blind_ms,
              static_cast<unsigned long long>(blind_pops), "-");
  if (guided_pops > 0) {
    std::printf("pop ratio (blind/guided): %.2fx\n",
                static_cast<double>(blind_pops) /
                    static_cast<double>(guided_pops));
  }
  bench::Check("guided answers match blind", guided_answers == blind_answers);
  bench::Check("guided pops <= 0.5x blind", guided_pops * 2 <= blind_pops);

  bench::EmitMetricsBlock(
      "connection_test",
      {bench::Config("pubs", pubs), bench::Config("pairs", num_pairs)});
  return 0;
}
