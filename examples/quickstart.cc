// Quickstart: parse a small collection of linked XML documents, build FliX,
// and run descendant / connection queries.
//
//   $ ./quickstart
#include <cstdio>

#include "common/bytes.h"
#include "flix/flix.h"
#include "xml/collection.h"

int main() {
  using namespace flix;

  // 1. Assemble a collection. Documents reference each other with href
  //    attributes ("doc" targets a root, "doc#anchor" an id= element).
  xml::Collection collection;
  const char* library = R"(
    <library>
      <shelf><book id="b1"><title>XML Indexing</title></book></shelf>
      <seealso href="reviews#r1"/>
    </library>)";
  const char* reviews = R"(
    <reviews>
      <review id="r1">
        <book idref="local"/>
        <rating>5</rating>
      </review>
      <book id="local"><title>Companion Volume</title></book>
      <external href="library"/>
    </reviews>)";

  if (auto added = collection.AddXml(library, "library"); !added.ok()) {
    std::fprintf(stderr, "parse error: %s\n", added.status().ToString().c_str());
    return 1;
  }
  if (auto added = collection.AddXml(reviews, "reviews"); !added.ok()) {
    std::fprintf(stderr, "parse error: %s\n", added.status().ToString().c_str());
    return 1;
  }
  collection.ResolveAllLinks();
  std::printf("collection: %zu documents, %zu elements, %zu links\n",
              collection.NumDocuments(), collection.NumElements(),
              collection.links().links.size());

  // 2. Build FliX. The Hybrid configuration partitions the collection into
  //    meta documents and picks the best index (PPO/HOPI/APEX) per part.
  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  auto flix = core::Flix::Build(collection, options);
  if (!flix.ok()) {
    std::fprintf(stderr, "build error: %s\n", flix.status().ToString().c_str());
    return 1;
  }
  const core::FlixStats& stats = (*flix)->stats();
  std::printf(
      "FliX built in %.2f ms: %zu meta documents (%zu PPO, %zu HOPI, %zu "
      "APEX), %s of indexes, %zu cross links\n",
      stats.build_ms, stats.num_meta_documents, stats.num_ppo, stats.num_hopi,
      stats.num_apex, FormatBytes(stats.total_index_bytes).c_str(),
      stats.num_cross_links);

  // 3. Descendant query: all <book> elements reachable from the library
  //    root — including those in the reviews document, via links.
  const NodeId library_root = collection.GlobalId(0, 0);
  std::printf("\nlibrary//book:\n");
  for (const core::Result& r :
       (*flix)->FindDescendantsByName(library_root, "book")) {
    const auto loc = collection.Locate(r.node);
    std::printf("  element %u in '%s' at distance %d\n", loc.elem,
                collection.document(loc.doc).name().c_str(), r.distance);
  }

  // 4. Connection test: is the library connected to the rating element?
  const NodeId rating =
      collection.GlobalId(1, 2);  // <rating> inside the review
  std::printf("\nlibrary root -> rating: %s (distance %d)\n",
              (*flix)->IsConnected(library_root, rating) ? "connected"
                                                         : "not connected",
              (*flix)->FindDistance(library_root, rating));

  // 5. Streaming: consume results from a worker thread, stop after the
  //    first one (top-k client behaviour); dropping the handle cancels the
  //    query and joins the worker.
  core::AsyncQuery query = (*flix)->pee().FindDescendantsByTagAsync(
      library_root, collection.pool().Lookup("title"), {});
  if (auto first = query.Next()) {
    std::printf("\nfirst streamed title element: node %u (distance %d)\n",
                first->node, first->distance);
  }
  return 0;
}
