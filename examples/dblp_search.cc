// DBLP-style search: generate the paper's evaluation corpus (Section 6,
// scaled by --pubs), build several FliX configurations, and answer the
// paper's flagship query — "all article descendants of a publication" —
// streaming the top-k results.
//
//   $ ./dblp_search [--pubs N] [--config naive|maxppo|uhopi|hybrid] [--k K]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/stopwatch.h"
#include "flix/flix.h"
#include "workload/dblp_generator.h"

namespace {

flix::core::MdbConfig ParseConfig(const std::string& name) {
  using flix::core::MdbConfig;
  if (name == "naive") return MdbConfig::kNaive;
  if (name == "maxppo") return MdbConfig::kMaximalPpo;
  if (name == "uhopi") return MdbConfig::kUnconnectedHopi;
  return MdbConfig::kHybrid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flix;

  size_t pubs = 1500;
  std::string config_name = "hybrid";
  int k = 20;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--pubs") == 0) pubs = std::stoul(argv[i + 1]);
    if (std::strcmp(argv[i], "--config") == 0) config_name = argv[i + 1];
    if (std::strcmp(argv[i], "--k") == 0) k = std::stoi(argv[i + 1]);
  }

  std::printf("generating DBLP-style corpus with %zu publications...\n", pubs);
  workload::DblpOptions dblp;
  dblp.num_publications = pubs;
  Stopwatch gen_watch;
  auto collection = workload::GenerateDblp(dblp);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }
  size_t inter_links = 0;
  for (const xml::Link& link : collection->links().links) {
    if (link.IsInterDocument()) ++inter_links;
  }
  std::printf("  %zu documents, %zu elements, %zu inter-document links "
              "(%.1f s)\n",
              collection->NumDocuments(), collection->NumElements(),
              inter_links, gen_watch.ElapsedSeconds());

  core::FlixOptions options;
  options.config = ParseConfig(config_name);
  options.partition_bound = 5000;
  std::printf("building FliX (%s configuration)...\n",
              std::string(core::MdbConfigName(options.config)).c_str());
  auto flix = core::Flix::Build(*collection, options);
  if (!flix.ok()) {
    std::fprintf(stderr, "%s\n", flix.status().ToString().c_str());
    return 1;
  }
  const core::FlixStats& stats = (*flix)->stats();
  std::printf("  %zu meta documents (%zu PPO / %zu HOPI / %zu APEX), "
              "index size %s, built in %.0f ms\n",
              stats.num_meta_documents, stats.num_ppo, stats.num_hopi,
              stats.num_apex, FormatBytes(stats.total_index_bytes).c_str(),
              stats.build_ms);

  // The paper's query: all article descendants of one publication (they use
  // Mohan's VLDB'99 ARIES paper; we take a late publication, whose citation
  // chains reach deep into the corpus).
  const DocId start_doc = static_cast<DocId>(collection->NumDocuments() - 1);
  const NodeId start = collection->GlobalId(start_doc, 0);
  std::printf("\ntop-%d article descendants of '%s':\n", k,
              collection->document(start_doc).name().c_str());

  core::QueryOptions qopts;
  core::AsyncQuery query = (*flix)->pee().FindDescendantsByTagAsync(
      start, collection->pool().Lookup("article"), qopts);

  Stopwatch query_watch;
  int shown = 0;
  while (shown < k) {
    const auto r = query.Next();
    if (!r.has_value()) break;
    const auto loc = collection->Locate(r->node);
    std::printf("  #%2d  %-22s distance %2d   (%.2f ms)\n", ++shown,
                collection->document(loc.doc).name().c_str(), r->distance,
                query_watch.ElapsedMillis());
  }
  query.Cancel();  // satisfied with top-k: abort the producer
  if (shown == 0) std::printf("  (no results)\n");

  // Connection test between two random publications.
  const NodeId a = collection->GlobalId(5 % collection->NumDocuments(), 0);
  const NodeId b = collection->GlobalId(0, 0);
  Stopwatch conn_watch;
  const bool connected = (*flix)->IsConnected(a, b);
  std::printf("\nconnection test %s -> %s: %s (%.2f ms)\n",
              collection->document(5 % collection->NumDocuments()).name().c_str(),
              collection->document(0).name().c_str(),
              connected ? "connected" : "not connected",
              conn_watch.ElapsedMillis());
  return 0;
}
