// Self-tuning (paper Section 7): run a query load against a deliberately
// poor configuration, watch the PEE's traversal statistics flag the
// mismatch, and rebuild with the recommended coarser meta documents. Also
// demonstrates the query result cache and exact-order evaluation.
//
//   $ ./self_tuning
#include <cstdio>

#include "common/stopwatch.h"
#include "flix/flix.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

int main() {
  using namespace flix;

  workload::SyntheticOptions synth;
  synth.seed = 99;
  synth.tree_docs = 4;
  synth.dense_docs = 24;
  synth.dense_links_per_doc = 5;
  synth.isolated_docs = 2;
  auto collection = workload::GenerateSynthetic(synth);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }
  const graph::Digraph g = collection->BuildGraph();
  std::printf("collection: %zu documents, %zu elements, %zu links\n\n",
              collection->NumDocuments(), collection->NumElements(),
              collection->links().links.size());

  workload::QuerySamplerOptions sampler;
  sampler.count = 15;
  sampler.min_results = 3;
  const auto queries =
      workload::SampleDescendantQueries(*collection, g, sampler);

  const auto run_load = [&](const core::Flix& flix) {
    Stopwatch watch;
    size_t results = 0;
    for (const auto& q : queries) {
      results += flix.FindDescendantsByName(q.start, q.tag_name).size();
    }
    const core::QueryStats stats = flix.CumulativeQueryStats();
    std::printf("  %zu queries, %zu results, %.2f ms; entries %zu "
                "(%zu dominated), links followed %zu, probes %zu\n",
                queries.size(), results, watch.ElapsedMillis(),
                stats.entries_processed, stats.entries_dominated,
                stats.links_followed, stats.index_probes);
  };

  // Round 1: Naive configuration on a densely linked collection — every
  // inter-document step is a run-time link hop.
  core::FlixOptions naive;
  naive.config = core::MdbConfig::kNaive;
  naive.query_cache_capacity = 64;
  auto flix = core::Flix::Build(*collection, naive);
  if (!flix.ok()) return 1;
  std::printf("round 1: %s configuration\n",
              std::string(core::MdbConfigName(naive.config)).c_str());
  run_load(**flix);

  const auto advice = (*flix)->RecommendReconfiguration(/*max_links=*/4);
  std::printf("  advice: %s\n\n",
              advice.rebuild_recommended ? advice.reason.c_str()
                                         : "configuration is fine");

  if (advice.rebuild_recommended) {
    // Round 2: follow the advice — coarser, HOPI-leaning meta documents.
    core::FlixOptions tuned;
    tuned.config = core::MdbConfig::kUnconnectedHopi;
    tuned.partition_bound = 2000;
    tuned.query_cache_capacity = 64;
    auto retuned = core::Flix::Build(*collection, tuned);
    if (!retuned.ok()) return 1;
    std::printf("round 2: rebuilt with %s (bound %zu)\n",
                std::string(core::MdbConfigName(tuned.config)).c_str(),
                tuned.partition_bound);
    run_load(**retuned);
    const auto after = (*retuned)->RecommendReconfiguration(4);
    std::printf("  advice: %s\n\n",
                after.rebuild_recommended ? after.reason.c_str()
                                          : "configuration is fine");
    flix = std::move(retuned);
  }

  // The result cache pays off for repeated queries.
  if (!queries.empty()) {
    Stopwatch cold;
    (*flix)->FindDescendantsByName(queries[0].start, queries[0].tag_name);
    const double cold_ms = cold.ElapsedMillis();
    Stopwatch warm;
    (*flix)->FindDescendantsByName(queries[0].start, queries[0].tag_name);
    std::printf("query cache: cold %.3f ms, warm %.3f ms (%zu hits, %zu "
                "misses)\n",
                cold_ms, warm.ElapsedMillis(),
                (*flix)->query_cache()->hits(),
                (*flix)->query_cache()->misses());
  }

  // Exact-order evaluation: same result set, exact distances, sorted.
  if (!queries.empty()) {
    core::QueryOptions exact;
    exact.exact = true;
    std::vector<core::Result> sorted;
    (*flix)->pee().FindDescendantsByTag(queries[0].start, queries[0].tag,
                                        exact, [&](const core::Result& r) {
                                          sorted.push_back(r);
                                          return true;
                                        });
    std::printf("exact mode: %zu results, first at distance %d, last at %d "
                "(fully sorted)\n",
                sorted.size(), sorted.empty() ? -1 : sorted.front().distance,
                sorted.empty() ? -1 : sorted.back().distance);
  }
  return 0;
}
