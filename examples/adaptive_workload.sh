#!/usr/bin/env bash
# Adaptive-ISS walkthrough: provision a DBLP index on the wrong strategy,
# watch the workload profile expose the mistake, and let `flixctl adapt`
# repair it online. docs/operations.md ("Adaptive re-selection") narrates
# each step; this script is the copy-paste version.
#
#   $ ./examples/adaptive_workload.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build (a configured cmake build tree with the
# flixctl target already compiled: `cmake -B build -S . && cmake --build
# build --target flixctl`).
set -euo pipefail

BUILD_DIR="${1:-build}"
FLIXCTL="$BUILD_DIR/tools/flixctl"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

COLLECTION="$WORK_DIR/dblp.flxc"
INDEX="$WORK_DIR/dblp.flix"

if [[ ! -x "$FLIXCTL" ]]; then
  echo "flixctl not found at $FLIXCTL — build it first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target flixctl" >&2
  exit 1
fi

echo "### 1. Build a partitioned DBLP index forced onto APEX everywhere"
echo "###    (a mis-provisioned deployment: APEX probes are ~14x a HOPI"
echo "###    label join on point-query-heavy workloads)"
"$FLIXCTL" build --dblp 2000 --config uhopi --iss-policy apex \
  --collection "$COLLECTION" --index "$INDEX"
echo

echo "### 2. Serve a workload and inspect the per-partition profile —"
echo "###    every hot partition is paying APEX probe prices"
"$FLIXCTL" profile --collection "$COLLECTION" --index "$INDEX" \
  --workload 200 --repeat 5 --top 5
echo

echo "### 3. Dry-run: what would the adaptive ISS change, and why?"
"$FLIXCTL" adapt --collection "$COLLECTION" --index "$INDEX" --dry-run
echo

echo "### 4. Apply: build replacements off the query path, validate them"
echo "###    (structural Validate + sampled differential probe), swap"
echo "###    atomically, re-save the index"
"$FLIXCTL" adapt --collection "$COLLECTION" --index "$INDEX" --apply
echo

echo "### 5. The migrated index still answers every query correctly"
"$FLIXCTL" check --collection "$COLLECTION" --index "$INDEX"
echo

echo "### 6. Profile again: the same workload now runs on the cheap strategy"
"$FLIXCTL" profile --collection "$COLLECTION" --index "$INDEX" \
  --workload 200 --repeat 5 --top 5 --no-save
