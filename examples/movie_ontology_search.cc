// The paper's Section 1 movie scenario end-to-end: a heterogeneous
// collection where different sources use different schemas, searched with a
// relaxed query (//~movie//~actor//~movie style) whose results are ranked
// by semantic similarity and path length.
//
//   $ ./movie_ontology_search
#include <cstdio>

#include "flix/flix.h"
#include "ontology/ontology.h"
#include "ontology/relaxation.h"
#include "xml/collection.h"

int main() {
  using namespace flix;

  // Three sources with different schemas for the same domain. Source B uses
  // science-fiction instead of movie and nests its cast; source C links its
  // actors to movies in other documents.
  xml::Collection collection;
  const struct {
    const char* name;
    const char* text;
  } sources[] = {
      {"imdb-a",
       R"(<movie id="matrix3">
            <title>Matrix: Revolutions</title>
            <actor id="reeves"><name>Keanu Reeves</name>
              <movie><title>John Wick</title></movie>
            </actor>
          </movie>)"},
      {"scifi-db",
       R"(<science-fiction>
            <title>Matrix 3</title>
            <cast>
              <actor id="moss"><name>Carrie-Anne Moss</name>
                <appears-in href="imdb-a#matrix3"/>
              </actor>
            </cast>
          </science-fiction>)"},
      {"fan-site",
       R"(<film>
            <name>Speed</name>
            <performer href="imdb-a#reeves"/>
          </film>)"},
  };
  for (const auto& source : sources) {
    if (auto added = collection.AddXml(source.text, source.name);
        !added.ok()) {
      std::fprintf(stderr, "parse error in %s: %s\n", source.name,
                   added.status().ToString().c_str());
      return 1;
    }
  }
  collection.ResolveAllLinks();
  std::printf("collection: %zu documents, %zu elements, %zu links\n\n",
              collection.NumDocuments(), collection.NumElements(),
              collection.links().links.size());

  auto flix = core::Flix::Build(collection, {});
  if (!flix.ok()) {
    std::fprintf(stderr, "%s\n", flix.status().ToString().c_str());
    return 1;
  }

  const ontology::Ontology onto = ontology::Ontology::MovieOntology();
  std::printf("ontology: science-fiction ~ movie at %.2f, performer ~ actor "
              "at %.2f\n\n",
              onto.Similarity("science-fiction", "movie"),
              onto.Similarity("performer", "actor"));

  // The paper's example query, first as written, then relaxed.
  for (const char* text : {"movie/actor", "//~movie//~actor"}) {
    auto query = ontology::ParsePathQuery(text);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    const auto matches = ontology::EvaluatePathQuery(**flix, onto, *query);
    std::printf("query %-18s -> %zu matches\n", text, matches.size());
    for (const auto& m : matches) {
      const auto loc = collection.Locate(m.node);
      const auto& doc = collection.document(loc.doc);
      std::printf("    score %.3f  path length %d  %s (element %u, <%s>)\n",
                  m.score, m.path_length, doc.name().c_str(), loc.elem,
                  collection.pool().Name(doc.element(loc.elem).tag).c_str());
    }
    std::printf("\n");
  }

  // The full motivating chain: movies whose actors were also in the cast of
  // another movie — crosses all three documents through links.
  auto chain = ontology::ParsePathQuery("//~movie//~actor//~movie");
  const auto matches = ontology::EvaluatePathQuery(**flix, onto, *chain);
  std::printf("query //~movie//~actor//~movie -> %zu matches\n",
              matches.size());
  for (const auto& m : matches) {
    const auto loc = collection.Locate(m.node);
    std::printf("    score %.3f  %s element %u\n", m.score,
                collection.document(loc.doc).name().c_str(), loc.elem);
  }
  return 0;
}
