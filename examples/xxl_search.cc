// XXL-style ranked search (the engine the paper positions FliX inside):
// structural vagueness (relaxed // steps via the PEE), semantic vagueness on
// tag names (ontology), and semantic vagueness on content (TF-IDF text
// index) combined into one ranked result list — the full
//     //~movie[title~"Matrix: Revolutions"]//~actor//~movie
// scenario of the paper's Section 1.
//
//   $ ./xxl_search [--pubs 400]
#include <cstdio>
#include <cstring>

#include "flix/flix.h"
#include "ontology/ontology.h"
#include "ontology/relaxation.h"
#include "text/text_index.h"
#include "workload/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace flix;
  size_t pubs = 400;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--pubs") == 0) pubs = std::stoul(argv[i + 1]);
  }

  // A bibliographic corpus doubles as a search target: find publications
  // about indexing that cite (directly or transitively) publications about
  // ranking.
  workload::DblpOptions options;
  options.num_publications = pubs;
  auto collection = workload::GenerateDblp(options);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }
  auto flix = core::Flix::Build(*collection, {});
  if (!flix.ok()) {
    std::fprintf(stderr, "%s\n", flix.status().ToString().c_str());
    return 1;
  }
  const text::TextIndex text_index = text::TextIndex::Build(*collection);
  std::printf("corpus: %zu documents, %zu elements; text index: %zu terms "
              "over %zu elements\n\n",
              collection->NumDocuments(), collection->NumElements(),
              text_index.NumTerms(), text_index.NumIndexedElements());

  // Ontology for the bibliographic domain: inproceedings ~ article.
  ontology::Ontology onto;
  onto.AddSimilarity("article", "inproceedings", 0.9);
  onto.AddSimilarity("abstract", "note", 0.7);

  // 1. Pure content search.
  std::printf("content search: \"adaptive path indexing\"\n");
  for (const auto& hit : text_index.Search("adaptive path indexing", 3)) {
    const auto loc = collection->Locate(hit.element);
    std::printf("    %.3f  %s#%u  \"%s\"\n", hit.score,
                collection->document(loc.doc).name().c_str(), loc.elem,
                collection->document(loc.doc)
                    .element(loc.elem)
                    .text.c_str());
  }

  // 2. Structure + tag similarity + content predicate, ranked.
  const char* query_text =
      R"(//~article[title~"adaptive indexing"]//~article)";
  auto query = ontology::ParsePathQuery(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  ontology::RelaxedQueryOptions ropts;
  ropts.text_index = &text_index;
  ropts.text_floor = 0.2;
  ropts.min_score = 0.02;
  const auto matches =
      ontology::EvaluatePathQuery(**flix, onto, *query, ropts);
  std::printf("\n%s -> %zu matches (top 5):\n", query_text, matches.size());
  int shown = 0;
  for (const auto& m : matches) {
    if (++shown > 5) break;
    const auto loc = collection->Locate(m.node);
    std::printf("    score %.3f  path length %2d  %s (<%s>)\n", m.score,
                m.path_length,
                collection->document(loc.doc).name().c_str(),
                collection->pool()
                    .Name(collection->document(loc.doc).element(loc.elem).tag)
                    .c_str());
  }
  if (matches.empty()) {
    std::printf("    (no matches — try a larger corpus)\n");
  }
  return 0;
}
