// Heterogeneous collections (paper Figure 1): generate a mixed corpus — a
// tree-like region, a densely interlinked region and isolated documents —
// and show how each Meta Document Builder configuration partitions it and
// which index the ISS picks per meta document.
//
//   $ ./hybrid_collections
#include <cstdio>

#include "common/bytes.h"
#include "flix/flix.h"
#include "graph/tree_utils.h"
#include "workload/synthetic_generator.h"

int main() {
  using namespace flix;

  workload::SyntheticOptions synth;
  synth.seed = 2026;
  synth.tree_docs = 6;
  synth.dense_docs = 8;
  synth.isolated_docs = 3;
  auto collection = workload::GenerateSynthetic(synth);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }
  std::printf("heterogeneous collection: %zu documents, %zu elements, %zu "
              "links\n\n",
              collection->NumDocuments(), collection->NumElements(),
              collection->links().links.size());

  const core::MdbConfig configs[] = {
      core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
      core::MdbConfig::kUnconnectedHopi, core::MdbConfig::kHybrid};

  for (const core::MdbConfig config : configs) {
    core::FlixOptions options;
    options.config = config;
    options.partition_bound = 100;
    auto flix = core::Flix::Build(*collection, options);
    if (!flix.ok()) {
      std::fprintf(stderr, "%s\n", flix.status().ToString().c_str());
      return 1;
    }
    const core::FlixStats& stats = (*flix)->stats();
    std::printf("%-16s %2zu meta docs (%zu PPO / %zu HOPI / %zu APEX)  "
                "index %-10s  cross links %zu  build %.1f ms\n",
                std::string(core::MdbConfigName(config)).c_str(),
                stats.num_meta_documents, stats.num_ppo, stats.num_hopi,
                stats.num_apex,
                FormatBytes(stats.total_index_bytes).c_str(),
                stats.num_cross_links, stats.build_ms);

    // Per-meta-document detail for the Hybrid configuration.
    if (config == core::MdbConfig::kHybrid) {
      std::printf("\n  Hybrid meta documents:\n");
      for (const core::MetaIndexStats& m : stats.per_meta) {
        const auto& meta = (*flix)->meta_documents().docs[m.meta_id];
        std::printf("    meta %2u: %4zu nodes %4zu edges  %-4s  %-9s  "
                    "link sources %zu\n",
                    m.meta_id, m.nodes, m.edges,
                    std::string(index::StrategyName(m.strategy)).c_str(),
                    FormatBytes(m.index_bytes).c_str(),
                    meta.link_sources.size());
      }
      std::printf("\n");
    }
  }

  // Show that queries spanning regions work in every configuration.
  const NodeId tree_root =
      collection->GlobalId(collection->FindDocument("tree0"), 0);
  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  options.partition_bound = 100;
  auto flix = core::Flix::Build(*collection, options);
  if (!flix.ok()) return 1;
  const auto results = (*flix)->FindDescendantsByName(tree_root, "t0");
  std::printf("\ntree0//t0 returned %zu elements across documents\n",
              results.size());
  return 0;
}
