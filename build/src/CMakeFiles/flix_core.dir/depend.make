# Empty dependencies file for flix_core.
# This may be replaced when dependencies are built.
