# Empty compiler generated dependencies file for flix_core.
# This may be replaced when dependencies are built.
