file(REMOVE_RECURSE
  "CMakeFiles/flix_core.dir/flix/flix.cc.o"
  "CMakeFiles/flix_core.dir/flix/flix.cc.o.d"
  "CMakeFiles/flix_core.dir/flix/index_builder.cc.o"
  "CMakeFiles/flix_core.dir/flix/index_builder.cc.o.d"
  "CMakeFiles/flix_core.dir/flix/iss.cc.o"
  "CMakeFiles/flix_core.dir/flix/iss.cc.o.d"
  "CMakeFiles/flix_core.dir/flix/mdb.cc.o"
  "CMakeFiles/flix_core.dir/flix/mdb.cc.o.d"
  "CMakeFiles/flix_core.dir/flix/meta_document.cc.o"
  "CMakeFiles/flix_core.dir/flix/meta_document.cc.o.d"
  "CMakeFiles/flix_core.dir/flix/pee.cc.o"
  "CMakeFiles/flix_core.dir/flix/pee.cc.o.d"
  "libflix_core.a"
  "libflix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
