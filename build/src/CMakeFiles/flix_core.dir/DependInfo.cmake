
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flix/flix.cc" "src/CMakeFiles/flix_core.dir/flix/flix.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/flix.cc.o.d"
  "/root/repo/src/flix/index_builder.cc" "src/CMakeFiles/flix_core.dir/flix/index_builder.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/index_builder.cc.o.d"
  "/root/repo/src/flix/iss.cc" "src/CMakeFiles/flix_core.dir/flix/iss.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/iss.cc.o.d"
  "/root/repo/src/flix/mdb.cc" "src/CMakeFiles/flix_core.dir/flix/mdb.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/mdb.cc.o.d"
  "/root/repo/src/flix/meta_document.cc" "src/CMakeFiles/flix_core.dir/flix/meta_document.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/meta_document.cc.o.d"
  "/root/repo/src/flix/pee.cc" "src/CMakeFiles/flix_core.dir/flix/pee.cc.o" "gcc" "src/CMakeFiles/flix_core.dir/flix/pee.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flix_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
