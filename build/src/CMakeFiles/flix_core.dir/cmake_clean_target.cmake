file(REMOVE_RECURSE
  "libflix_core.a"
)
