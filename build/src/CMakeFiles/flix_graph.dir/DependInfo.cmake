
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/flix_graph.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/flix_graph.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/flix_graph.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/flix_graph.dir/graph/partition.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/CMakeFiles/flix_graph.dir/graph/scc.cc.o" "gcc" "src/CMakeFiles/flix_graph.dir/graph/scc.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/flix_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/flix_graph.dir/graph/traversal.cc.o.d"
  "/root/repo/src/graph/tree_utils.cc" "src/CMakeFiles/flix_graph.dir/graph/tree_utils.cc.o" "gcc" "src/CMakeFiles/flix_graph.dir/graph/tree_utils.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
