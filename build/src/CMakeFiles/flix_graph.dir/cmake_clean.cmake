file(REMOVE_RECURSE
  "CMakeFiles/flix_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/flix_graph.dir/graph/digraph.cc.o.d"
  "CMakeFiles/flix_graph.dir/graph/partition.cc.o"
  "CMakeFiles/flix_graph.dir/graph/partition.cc.o.d"
  "CMakeFiles/flix_graph.dir/graph/scc.cc.o"
  "CMakeFiles/flix_graph.dir/graph/scc.cc.o.d"
  "CMakeFiles/flix_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/flix_graph.dir/graph/traversal.cc.o.d"
  "CMakeFiles/flix_graph.dir/graph/tree_utils.cc.o"
  "CMakeFiles/flix_graph.dir/graph/tree_utils.cc.o.d"
  "libflix_graph.a"
  "libflix_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
