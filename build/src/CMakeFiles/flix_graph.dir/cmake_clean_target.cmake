file(REMOVE_RECURSE
  "libflix_graph.a"
)
