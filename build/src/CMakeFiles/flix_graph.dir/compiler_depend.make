# Empty compiler generated dependencies file for flix_graph.
# This may be replaced when dependencies are built.
