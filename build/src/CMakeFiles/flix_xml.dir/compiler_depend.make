# Empty compiler generated dependencies file for flix_xml.
# This may be replaced when dependencies are built.
