
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/collection.cc" "src/CMakeFiles/flix_xml.dir/xml/collection.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/collection.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/flix_xml.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/link_resolver.cc" "src/CMakeFiles/flix_xml.dir/xml/link_resolver.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/link_resolver.cc.o.d"
  "/root/repo/src/xml/name_pool.cc" "src/CMakeFiles/flix_xml.dir/xml/name_pool.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/name_pool.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/flix_xml.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/flix_xml.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/flix_xml.dir/xml/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
