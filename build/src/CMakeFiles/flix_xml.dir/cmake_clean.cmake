file(REMOVE_RECURSE
  "CMakeFiles/flix_xml.dir/xml/collection.cc.o"
  "CMakeFiles/flix_xml.dir/xml/collection.cc.o.d"
  "CMakeFiles/flix_xml.dir/xml/document.cc.o"
  "CMakeFiles/flix_xml.dir/xml/document.cc.o.d"
  "CMakeFiles/flix_xml.dir/xml/link_resolver.cc.o"
  "CMakeFiles/flix_xml.dir/xml/link_resolver.cc.o.d"
  "CMakeFiles/flix_xml.dir/xml/name_pool.cc.o"
  "CMakeFiles/flix_xml.dir/xml/name_pool.cc.o.d"
  "CMakeFiles/flix_xml.dir/xml/parser.cc.o"
  "CMakeFiles/flix_xml.dir/xml/parser.cc.o.d"
  "CMakeFiles/flix_xml.dir/xml/serializer.cc.o"
  "CMakeFiles/flix_xml.dir/xml/serializer.cc.o.d"
  "libflix_xml.a"
  "libflix_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
