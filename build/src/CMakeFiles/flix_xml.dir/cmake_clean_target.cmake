file(REMOVE_RECURSE
  "libflix_xml.a"
)
