file(REMOVE_RECURSE
  "CMakeFiles/flix_text.dir/text/text_index.cc.o"
  "CMakeFiles/flix_text.dir/text/text_index.cc.o.d"
  "libflix_text.a"
  "libflix_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
