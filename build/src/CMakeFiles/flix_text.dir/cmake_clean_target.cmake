file(REMOVE_RECURSE
  "libflix_text.a"
)
