# Empty dependencies file for flix_text.
# This may be replaced when dependencies are built.
