# Empty dependencies file for flix_workload.
# This may be replaced when dependencies are built.
