file(REMOVE_RECURSE
  "libflix_workload.a"
)
