file(REMOVE_RECURSE
  "CMakeFiles/flix_workload.dir/workload/dblp_generator.cc.o"
  "CMakeFiles/flix_workload.dir/workload/dblp_generator.cc.o.d"
  "CMakeFiles/flix_workload.dir/workload/inex_generator.cc.o"
  "CMakeFiles/flix_workload.dir/workload/inex_generator.cc.o.d"
  "CMakeFiles/flix_workload.dir/workload/query_workload.cc.o"
  "CMakeFiles/flix_workload.dir/workload/query_workload.cc.o.d"
  "CMakeFiles/flix_workload.dir/workload/synthetic_generator.cc.o"
  "CMakeFiles/flix_workload.dir/workload/synthetic_generator.cc.o.d"
  "libflix_workload.a"
  "libflix_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
