
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dblp_generator.cc" "src/CMakeFiles/flix_workload.dir/workload/dblp_generator.cc.o" "gcc" "src/CMakeFiles/flix_workload.dir/workload/dblp_generator.cc.o.d"
  "/root/repo/src/workload/inex_generator.cc" "src/CMakeFiles/flix_workload.dir/workload/inex_generator.cc.o" "gcc" "src/CMakeFiles/flix_workload.dir/workload/inex_generator.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/CMakeFiles/flix_workload.dir/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/flix_workload.dir/workload/query_workload.cc.o.d"
  "/root/repo/src/workload/synthetic_generator.cc" "src/CMakeFiles/flix_workload.dir/workload/synthetic_generator.cc.o" "gcc" "src/CMakeFiles/flix_workload.dir/workload/synthetic_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
