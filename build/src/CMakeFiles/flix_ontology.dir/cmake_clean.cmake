file(REMOVE_RECURSE
  "CMakeFiles/flix_ontology.dir/ontology/ontology.cc.o"
  "CMakeFiles/flix_ontology.dir/ontology/ontology.cc.o.d"
  "CMakeFiles/flix_ontology.dir/ontology/relaxation.cc.o"
  "CMakeFiles/flix_ontology.dir/ontology/relaxation.cc.o.d"
  "libflix_ontology.a"
  "libflix_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
