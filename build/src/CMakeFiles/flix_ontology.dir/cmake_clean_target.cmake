file(REMOVE_RECURSE
  "libflix_ontology.a"
)
