# Empty dependencies file for flix_ontology.
# This may be replaced when dependencies are built.
