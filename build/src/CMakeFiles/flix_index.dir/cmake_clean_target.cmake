file(REMOVE_RECURSE
  "libflix_index.a"
)
