
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/apex.cc" "src/CMakeFiles/flix_index.dir/index/apex.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/apex.cc.o.d"
  "/root/repo/src/index/dataguide.cc" "src/CMakeFiles/flix_index.dir/index/dataguide.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/dataguide.cc.o.d"
  "/root/repo/src/index/hopi.cc" "src/CMakeFiles/flix_index.dir/index/hopi.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/hopi.cc.o.d"
  "/root/repo/src/index/path_index.cc" "src/CMakeFiles/flix_index.dir/index/path_index.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/path_index.cc.o.d"
  "/root/repo/src/index/ppo.cc" "src/CMakeFiles/flix_index.dir/index/ppo.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/ppo.cc.o.d"
  "/root/repo/src/index/summary_index.cc" "src/CMakeFiles/flix_index.dir/index/summary_index.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/summary_index.cc.o.d"
  "/root/repo/src/index/transitive_closure.cc" "src/CMakeFiles/flix_index.dir/index/transitive_closure.cc.o" "gcc" "src/CMakeFiles/flix_index.dir/index/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
