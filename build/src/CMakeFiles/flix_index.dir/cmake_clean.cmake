file(REMOVE_RECURSE
  "CMakeFiles/flix_index.dir/index/apex.cc.o"
  "CMakeFiles/flix_index.dir/index/apex.cc.o.d"
  "CMakeFiles/flix_index.dir/index/dataguide.cc.o"
  "CMakeFiles/flix_index.dir/index/dataguide.cc.o.d"
  "CMakeFiles/flix_index.dir/index/hopi.cc.o"
  "CMakeFiles/flix_index.dir/index/hopi.cc.o.d"
  "CMakeFiles/flix_index.dir/index/path_index.cc.o"
  "CMakeFiles/flix_index.dir/index/path_index.cc.o.d"
  "CMakeFiles/flix_index.dir/index/ppo.cc.o"
  "CMakeFiles/flix_index.dir/index/ppo.cc.o.d"
  "CMakeFiles/flix_index.dir/index/summary_index.cc.o"
  "CMakeFiles/flix_index.dir/index/summary_index.cc.o.d"
  "CMakeFiles/flix_index.dir/index/transitive_closure.cc.o"
  "CMakeFiles/flix_index.dir/index/transitive_closure.cc.o.d"
  "libflix_index.a"
  "libflix_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
