# Empty dependencies file for flix_index.
# This may be replaced when dependencies are built.
