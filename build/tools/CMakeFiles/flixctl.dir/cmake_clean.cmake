file(REMOVE_RECURSE
  "CMakeFiles/flixctl.dir/flixctl.cc.o"
  "CMakeFiles/flixctl.dir/flixctl.cc.o.d"
  "flixctl"
  "flixctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flixctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
