# Empty dependencies file for flixctl.
# This may be replaced when dependencies are built.
