file(REMOVE_RECURSE
  "CMakeFiles/bench_connection_test.dir/bench_connection_test.cc.o"
  "CMakeFiles/bench_connection_test.dir/bench_connection_test.cc.o.d"
  "bench_connection_test"
  "bench_connection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
