# Empty dependencies file for bench_connection_test.
# This may be replaced when dependencies are built.
