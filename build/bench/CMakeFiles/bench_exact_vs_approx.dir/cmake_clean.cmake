file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_vs_approx.dir/bench_exact_vs_approx.cc.o"
  "CMakeFiles/bench_exact_vs_approx.dir/bench_exact_vs_approx.cc.o.d"
  "bench_exact_vs_approx"
  "bench_exact_vs_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_vs_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
