file(REMOVE_RECURSE
  "CMakeFiles/bench_query_types.dir/bench_query_types.cc.o"
  "CMakeFiles/bench_query_types.dir/bench_query_types.cc.o.d"
  "bench_query_types"
  "bench_query_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
