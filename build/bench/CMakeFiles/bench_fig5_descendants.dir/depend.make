# Empty dependencies file for bench_fig5_descendants.
# This may be replaced when dependencies are built.
