file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_descendants.dir/bench_fig5_descendants.cc.o"
  "CMakeFiles/bench_fig5_descendants.dir/bench_fig5_descendants.cc.o.d"
  "bench_fig5_descendants"
  "bench_fig5_descendants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_descendants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
