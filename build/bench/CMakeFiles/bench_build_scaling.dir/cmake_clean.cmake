file(REMOVE_RECURSE
  "CMakeFiles/bench_build_scaling.dir/bench_build_scaling.cc.o"
  "CMakeFiles/bench_build_scaling.dir/bench_build_scaling.cc.o.d"
  "bench_build_scaling"
  "bench_build_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_build_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
