file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptivity.dir/bench_adaptivity.cc.o"
  "CMakeFiles/bench_adaptivity.dir/bench_adaptivity.cc.o.d"
  "bench_adaptivity"
  "bench_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
