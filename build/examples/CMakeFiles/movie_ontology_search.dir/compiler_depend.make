# Empty compiler generated dependencies file for movie_ontology_search.
# This may be replaced when dependencies are built.
