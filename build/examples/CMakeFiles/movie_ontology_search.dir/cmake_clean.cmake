file(REMOVE_RECURSE
  "CMakeFiles/movie_ontology_search.dir/movie_ontology_search.cc.o"
  "CMakeFiles/movie_ontology_search.dir/movie_ontology_search.cc.o.d"
  "movie_ontology_search"
  "movie_ontology_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_ontology_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
