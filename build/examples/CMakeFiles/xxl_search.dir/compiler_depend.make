# Empty compiler generated dependencies file for xxl_search.
# This may be replaced when dependencies are built.
