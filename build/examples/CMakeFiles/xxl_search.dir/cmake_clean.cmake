file(REMOVE_RECURSE
  "CMakeFiles/xxl_search.dir/xxl_search.cc.o"
  "CMakeFiles/xxl_search.dir/xxl_search.cc.o.d"
  "xxl_search"
  "xxl_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xxl_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
