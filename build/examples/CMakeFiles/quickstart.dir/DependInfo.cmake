
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
