# Empty dependencies file for hybrid_collections.
# This may be replaced when dependencies are built.
