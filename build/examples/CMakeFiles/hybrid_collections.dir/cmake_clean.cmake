file(REMOVE_RECURSE
  "CMakeFiles/hybrid_collections.dir/hybrid_collections.cc.o"
  "CMakeFiles/hybrid_collections.dir/hybrid_collections.cc.o.d"
  "hybrid_collections"
  "hybrid_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
