# Empty dependencies file for graph_tree_utils_test.
# This may be replaced when dependencies are built.
