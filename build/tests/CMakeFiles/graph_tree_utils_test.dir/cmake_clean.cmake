file(REMOVE_RECURSE
  "CMakeFiles/graph_tree_utils_test.dir/graph_tree_utils_test.cc.o"
  "CMakeFiles/graph_tree_utils_test.dir/graph_tree_utils_test.cc.o.d"
  "graph_tree_utils_test"
  "graph_tree_utils_test.pdb"
  "graph_tree_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tree_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
