# Empty dependencies file for flix_pee_test.
# This may be replaced when dependencies are built.
