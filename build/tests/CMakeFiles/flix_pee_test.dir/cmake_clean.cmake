file(REMOVE_RECURSE
  "CMakeFiles/flix_pee_test.dir/flix_pee_test.cc.o"
  "CMakeFiles/flix_pee_test.dir/flix_pee_test.cc.o.d"
  "flix_pee_test"
  "flix_pee_test.pdb"
  "flix_pee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_pee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
