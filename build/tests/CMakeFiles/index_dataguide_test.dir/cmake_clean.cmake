file(REMOVE_RECURSE
  "CMakeFiles/index_dataguide_test.dir/index_dataguide_test.cc.o"
  "CMakeFiles/index_dataguide_test.dir/index_dataguide_test.cc.o.d"
  "index_dataguide_test"
  "index_dataguide_test.pdb"
  "index_dataguide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_dataguide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
