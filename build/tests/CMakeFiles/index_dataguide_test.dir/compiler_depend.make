# Empty compiler generated dependencies file for index_dataguide_test.
# This may be replaced when dependencies are built.
