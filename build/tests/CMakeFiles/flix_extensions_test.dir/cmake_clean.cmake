file(REMOVE_RECURSE
  "CMakeFiles/flix_extensions_test.dir/flix_extensions_test.cc.o"
  "CMakeFiles/flix_extensions_test.dir/flix_extensions_test.cc.o.d"
  "flix_extensions_test"
  "flix_extensions_test.pdb"
  "flix_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
