# Empty dependencies file for flix_extensions_test.
# This may be replaced when dependencies are built.
