file(REMOVE_RECURSE
  "CMakeFiles/flix_streamed_list_test.dir/flix_streamed_list_test.cc.o"
  "CMakeFiles/flix_streamed_list_test.dir/flix_streamed_list_test.cc.o.d"
  "flix_streamed_list_test"
  "flix_streamed_list_test.pdb"
  "flix_streamed_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_streamed_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
