# Empty compiler generated dependencies file for flix_streamed_list_test.
# This may be replaced when dependencies are built.
