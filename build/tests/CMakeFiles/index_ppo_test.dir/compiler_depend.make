# Empty compiler generated dependencies file for index_ppo_test.
# This may be replaced when dependencies are built.
