file(REMOVE_RECURSE
  "CMakeFiles/index_ppo_test.dir/index_ppo_test.cc.o"
  "CMakeFiles/index_ppo_test.dir/index_ppo_test.cc.o.d"
  "index_ppo_test"
  "index_ppo_test.pdb"
  "index_ppo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_ppo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
