# Empty dependencies file for index_tc_test.
# This may be replaced when dependencies are built.
