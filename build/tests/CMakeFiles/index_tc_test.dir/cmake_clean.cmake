file(REMOVE_RECURSE
  "CMakeFiles/index_tc_test.dir/index_tc_test.cc.o"
  "CMakeFiles/index_tc_test.dir/index_tc_test.cc.o.d"
  "index_tc_test"
  "index_tc_test.pdb"
  "index_tc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_tc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
