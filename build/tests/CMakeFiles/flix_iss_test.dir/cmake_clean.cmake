file(REMOVE_RECURSE
  "CMakeFiles/flix_iss_test.dir/flix_iss_test.cc.o"
  "CMakeFiles/flix_iss_test.dir/flix_iss_test.cc.o.d"
  "flix_iss_test"
  "flix_iss_test.pdb"
  "flix_iss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_iss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
