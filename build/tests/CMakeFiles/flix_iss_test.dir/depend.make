# Empty dependencies file for flix_iss_test.
# This may be replaced when dependencies are built.
