file(REMOVE_RECURSE
  "CMakeFiles/index_hopi_test.dir/index_hopi_test.cc.o"
  "CMakeFiles/index_hopi_test.dir/index_hopi_test.cc.o.d"
  "index_hopi_test"
  "index_hopi_test.pdb"
  "index_hopi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_hopi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
