# Empty dependencies file for xml_roundtrip_test.
# This may be replaced when dependencies are built.
