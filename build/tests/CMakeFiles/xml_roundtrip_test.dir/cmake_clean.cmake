file(REMOVE_RECURSE
  "CMakeFiles/xml_roundtrip_test.dir/xml_roundtrip_test.cc.o"
  "CMakeFiles/xml_roundtrip_test.dir/xml_roundtrip_test.cc.o.d"
  "xml_roundtrip_test"
  "xml_roundtrip_test.pdb"
  "xml_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
