file(REMOVE_RECURSE
  "CMakeFiles/flix_mdb_test.dir/flix_mdb_test.cc.o"
  "CMakeFiles/flix_mdb_test.dir/flix_mdb_test.cc.o.d"
  "flix_mdb_test"
  "flix_mdb_test.pdb"
  "flix_mdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_mdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
