# Empty dependencies file for flix_mdb_test.
# This may be replaced when dependencies are built.
