# Empty dependencies file for xml_collection_test.
# This may be replaced when dependencies are built.
