file(REMOVE_RECURSE
  "CMakeFiles/xml_collection_test.dir/xml_collection_test.cc.o"
  "CMakeFiles/xml_collection_test.dir/xml_collection_test.cc.o.d"
  "xml_collection_test"
  "xml_collection_test.pdb"
  "xml_collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
