file(REMOVE_RECURSE
  "CMakeFiles/index_apex_test.dir/index_apex_test.cc.o"
  "CMakeFiles/index_apex_test.dir/index_apex_test.cc.o.d"
  "index_apex_test"
  "index_apex_test.pdb"
  "index_apex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_apex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
