# Empty dependencies file for index_apex_test.
# This may be replaced when dependencies are built.
