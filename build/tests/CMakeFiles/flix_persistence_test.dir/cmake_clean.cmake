file(REMOVE_RECURSE
  "CMakeFiles/flix_persistence_test.dir/flix_persistence_test.cc.o"
  "CMakeFiles/flix_persistence_test.dir/flix_persistence_test.cc.o.d"
  "flix_persistence_test"
  "flix_persistence_test.pdb"
  "flix_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
