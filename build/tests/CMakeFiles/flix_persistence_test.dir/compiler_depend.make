# Empty compiler generated dependencies file for flix_persistence_test.
# This may be replaced when dependencies are built.
