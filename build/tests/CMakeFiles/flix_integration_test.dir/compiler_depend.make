# Empty compiler generated dependencies file for flix_integration_test.
# This may be replaced when dependencies are built.
