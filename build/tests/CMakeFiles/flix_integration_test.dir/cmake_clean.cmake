file(REMOVE_RECURSE
  "CMakeFiles/flix_integration_test.dir/flix_integration_test.cc.o"
  "CMakeFiles/flix_integration_test.dir/flix_integration_test.cc.o.d"
  "flix_integration_test"
  "flix_integration_test.pdb"
  "flix_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flix_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
