# Empty dependencies file for index_summary_test.
# This may be replaced when dependencies are built.
