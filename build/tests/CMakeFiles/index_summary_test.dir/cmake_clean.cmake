file(REMOVE_RECURSE
  "CMakeFiles/index_summary_test.dir/index_summary_test.cc.o"
  "CMakeFiles/index_summary_test.dir/index_summary_test.cc.o.d"
  "index_summary_test"
  "index_summary_test.pdb"
  "index_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
