# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/xml_document_test[1]_include.cmake")
include("/root/repo/build/tests/xml_collection_test[1]_include.cmake")
include("/root/repo/build/tests/xml_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/graph_digraph_test[1]_include.cmake")
include("/root/repo/build/tests/graph_traversal_test[1]_include.cmake")
include("/root/repo/build/tests/graph_scc_test[1]_include.cmake")
include("/root/repo/build/tests/graph_tree_utils_test[1]_include.cmake")
include("/root/repo/build/tests/graph_partition_test[1]_include.cmake")
include("/root/repo/build/tests/index_ppo_test[1]_include.cmake")
include("/root/repo/build/tests/index_hopi_test[1]_include.cmake")
include("/root/repo/build/tests/index_apex_test[1]_include.cmake")
include("/root/repo/build/tests/index_tc_test[1]_include.cmake")
include("/root/repo/build/tests/index_dataguide_test[1]_include.cmake")
include("/root/repo/build/tests/index_summary_test[1]_include.cmake")
include("/root/repo/build/tests/index_property_test[1]_include.cmake")
include("/root/repo/build/tests/flix_mdb_test[1]_include.cmake")
include("/root/repo/build/tests/flix_iss_test[1]_include.cmake")
include("/root/repo/build/tests/flix_streamed_list_test[1]_include.cmake")
include("/root/repo/build/tests/flix_pee_test[1]_include.cmake")
include("/root/repo/build/tests/flix_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/flix_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/flix_integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/ontology_test[1]_include.cmake")
include("/root/repo/build/tests/text_index_test[1]_include.cmake")
